"""One-call method comparison with uncertainty.

``compare_methods`` runs several indexes over the same queries at the
same candidate budget, computes per-query recalls, and reports each
pairwise gap against the best method with a paired bootstrap test —
the complete "which method wins, and is it significant?" workflow in
one call.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.eval.reporting import format_table
from repro.eval.stats import PairedTestResult, bootstrap_ci, paired_bootstrap_test

__all__ = ["MethodComparison", "compare_methods"]


@dataclass(frozen=True)
class MethodComparison:
    """Result of :func:`compare_methods`.

    Attributes
    ----------
    per_query:
        Method name → per-query recall array.
    ci:
        Method name → 95% bootstrap CI of mean recall.
    best:
        Method with the highest mean recall.
    tests:
        Method name → paired test of (best − method); the best method
        maps to ``None``.
    """

    per_query: dict[str, np.ndarray]
    ci: dict[str, tuple[float, float]]
    best: str
    tests: dict[str, PairedTestResult | None]

    def mean(self, method: str) -> float:
        return float(self.per_query[method].mean())

    def to_table(self) -> str:
        rows = []
        for method, recalls in self.per_query.items():
            lo, hi = self.ci[method]
            test = self.tests[method]
            if test is None:
                verdict = "(best)"
            elif test.significant:
                verdict = f"worse by {test.mean_difference:.3f} (p={test.p_value:.3f})"
            else:
                verdict = f"tied (p={test.p_value:.3f})"
            rows.append(
                [method, round(float(recalls.mean()), 4),
                 f"[{lo:.3f}, {hi:.3f}]", verdict]
            )
        return format_table(
            ["method", "mean recall", "95% CI", "vs best"], rows
        )


def compare_methods(
    indexes: dict[str, object],
    queries: np.ndarray,
    truth_ids: np.ndarray,
    k: int,
    n_candidates: int,
    seed: int | None = 0,
) -> MethodComparison:
    """Per-query recall comparison of several indexes at one budget.

    ``indexes`` maps method names to objects exposing
    ``search(query, k, n_candidates)``.  All methods see the *same*
    queries, so the bootstrap tests are paired.
    """
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    truth = np.asarray(truth_ids)
    if len(truth) != len(queries):
        raise ValueError("need one truth row per query")
    if not indexes:
        raise ValueError("need at least one index")

    per_query: dict[str, np.ndarray] = {}
    for method, index in indexes.items():
        recalls = np.empty(len(queries))
        for i, (query, truth_row) in enumerate(zip(queries, truth)):
            result = index.search(query, k, n_candidates)
            recalls[i] = (
                len(np.intersect1d(result.ids, truth_row)) / truth.shape[1]
            )
        per_query[method] = recalls

    best = max(per_query, key=lambda name: per_query[name].mean())
    ci = {
        method: bootstrap_ci(recalls, seed=seed)
        for method, recalls in per_query.items()
    }
    tests = {
        method: (
            None
            if method == best
            else paired_bootstrap_test(
                per_query[best], per_query[method], seed=seed
            )
        )
        for method in per_query
    }
    return MethodComparison(per_query=per_query, ci=ci, best=best, tests=tests)
