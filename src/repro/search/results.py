"""Search-result container shared by all index types."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:
    from repro.search.engine import ExecutionContext

__all__ = ["SearchResult"]


@dataclass(frozen=True)
class SearchResult:
    """Outcome of one approximate kNN query.

    Attributes
    ----------
    ids:
        Item ids of the returned neighbours, ascending distance; may be
        shorter than ``k`` if fewer candidates were retrieved.
    distances:
        Exact Euclidean distances aligned with ``ids``.
    n_candidates:
        Number of candidate items retrieved (evaluation cost).
    n_buckets_probed:
        Number of buckets fetched from the table(s) (retrieval cost).
    extras:
        Free-form per-result metadata.  Engine-backed searches attach
        ``"stats"`` (see :attr:`stats`); distributed searches
        additionally report their fault-tolerance outcome:

        * ``"coverage"`` — reachable fraction of the routed items in
          ``[0, 1]``; 1.0 means every contacted partition answered.
        * ``"degraded"`` — ``True`` when partitions stayed unreachable
          after retries/hedging/failover and the result is the exact
          top-k of the *reachable* subset only.
        * ``"retries"`` / ``"hedges"`` — failed attempts retried and
          hedged requests issued for this query.
        * ``"fault_events"`` — classified fault records
          (worker, taxonomy kind, attempt) in injection order.
        * ``"makespan_seconds"`` / ``"worker_seconds"`` /
          ``"workers_contacted"`` / ``"partitions_lost"`` — the
          coordinator's simulated cost accounting.
    """

    ids: np.ndarray
    distances: np.ndarray
    n_candidates: int = 0
    n_buckets_probed: int = 0
    extras: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.ids)

    @property
    def stats(self) -> ExecutionContext | None:
        """The engine's per-query ``ExecutionContext``, if one was attached.

        Engine-backed searches always attach one under
        ``extras["stats"]``: per-stage wall times, buckets probed,
        candidates gathered, early-stop trigger.  ``None`` for results
        built outside the query-execution engine.
        """
        return self.extras.get("stats")
