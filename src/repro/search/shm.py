"""Shared-memory publication of immutable index state for process workers.

The process execution mode of
:class:`~repro.search.parallel.ParallelBatchExecutor` must not pickle
the index into every worker: the vectors and the bucket layout are by
far the largest state, and they are immutable between index mutations.
This module publishes that state once per engine *generation* into
named ``multiprocessing.shared_memory`` segments:

* the ``(n, d)`` float64 item vectors (what exact evaluation scores);
* the table's CSR-style dense layout — ascending bucket ``signatures``,
  per-bucket ``sizes``, ``offsets`` into the flat id array, and the
  concatenated ``ids_flat`` (what retrieval drains).

Workers attach **zero-copy**: :func:`run_ordered_shard` maps the named
segments into numpy views, rebuilds a minimal
:class:`~repro.search.engine.QueryEngine` over them, and runs the
unchanged serial ordered batch path over its contiguous query shard —
so the process path is bit-identical to serial execution by
construction.  Results travel back as compact arrays (ids, distances,
stats columns) rather than pickled ``SearchResult`` objects.

Attachments are cached per worker process, keyed by publication family,
and re-attached when the generation in the incoming spec differs from
the cached one — a worker can never read a stale segment after the
parent republishes (mutable indexes bump the generation on every
mutation, which retires the old segment names entirely).

Lifecycle: the parent owns every segment — it unlinks on republish and
on executor shutdown, with a ``weakref.finalize`` backstop in the
executor for abandoned instances (see :func:`_attach_segment` for how
worker attachments stay out of the segments' lifetime).
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import TYPE_CHECKING

import numpy as np

from repro import obs

if TYPE_CHECKING:
    from repro.search.engine import QueryEngine, QueryPlan
    from repro.search.results import SearchResult

__all__ = [
    "SharedArraySpec",
    "SharedBucketTable",
    "SharedIndexPublication",
    "SharedIndexSpec",
    "attached_generation",
    "publish_index",
    "run_ordered_shard",
    "unpack_shard_results",
]

_EMPTY_IDS = np.empty(0, dtype=np.int64)

# Deterministic segment naming: pid plus a monotone counter.  Names are
# process-unique without consulting a RNG, and short enough for every
# platform's shm name limit.
_SEGMENT_COUNTER = 0
_SEGMENT_LOCK = threading.Lock()


def _next_segment_name() -> str:
    global _SEGMENT_COUNTER
    with _SEGMENT_LOCK:
        _SEGMENT_COUNTER += 1
        return f"repro-{os.getpid()}-{_SEGMENT_COUNTER}"


@dataclass(frozen=True)
class SharedArraySpec:
    """Picklable description of one published array: name, shape, dtype."""

    name: str
    shape: tuple[int, ...]
    dtype: str


@dataclass(frozen=True)
class SharedIndexSpec:
    """Everything a worker needs to attach one published index.

    ``family`` identifies the publishing engine (its process-unique
    cache token) and ``generation`` the engine generation the arrays
    were snapshotted at; together they key the worker-side attachment
    cache.  The remaining fields point at the named segments.
    """

    family: str
    generation: int
    engine_name: str
    metric: str
    vectors: SharedArraySpec
    signatures: SharedArraySpec
    sizes: SharedArraySpec
    offsets: SharedArraySpec
    ids_flat: SharedArraySpec


class SharedIndexPublication:
    """Parent-side handle on one generation's published segments."""

    def __init__(
        self,
        spec: SharedIndexSpec,
        segments: list[shared_memory.SharedMemory],
    ) -> None:
        self.spec = spec
        self._segments = segments
        self._closed = False
        self._close_lock = threading.Lock()

    def close(self) -> None:
        """Close and unlink every segment (idempotent)."""
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
            segments, self._segments = self._segments, []
        for segment in segments:
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:
                pass


def _publish_array(array: np.ndarray) -> tuple[
    shared_memory.SharedMemory, SharedArraySpec
]:
    contiguous = np.ascontiguousarray(array)
    segment = shared_memory.SharedMemory(
        name=_next_segment_name(),
        create=True,
        size=max(contiguous.nbytes, 1),
    )
    if contiguous.nbytes:
        view: np.ndarray = np.ndarray(
            contiguous.shape, dtype=contiguous.dtype, buffer=segment.buf
        )
        view[...] = contiguous
    spec = SharedArraySpec(
        name=segment.name,
        shape=tuple(int(s) for s in contiguous.shape),
        dtype=str(contiguous.dtype),
    )
    return segment, spec


def publish_index(
    family: str,
    generation: int,
    engine_name: str,
    metric: str,
    vectors: np.ndarray,
    layout: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
) -> SharedIndexPublication:
    """Snapshot one index generation into named shared-memory segments.

    ``layout`` is the table's ``dense_layout()`` tuple.  The returned
    publication owns the segments; callers must :meth:`close` it when
    the generation is retired (the executor does, on republish and on
    shutdown).
    """
    signatures, sizes, offsets, ids_flat = layout
    segments: list[shared_memory.SharedMemory] = []
    specs: list[SharedArraySpec] = []
    try:
        for array in (
            np.asarray(vectors, dtype=np.float64),
            np.asarray(signatures, dtype=np.int64),
            np.asarray(sizes, dtype=np.int64),
            np.asarray(offsets, dtype=np.int64),
            np.asarray(ids_flat, dtype=np.int64),
        ):
            segment, spec = _publish_array(array)
            segments.append(segment)
            specs.append(spec)
    except BaseException:
        for segment in segments:
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:
                pass
        raise
    index_spec = SharedIndexSpec(
        family=family,
        generation=generation,
        engine_name=engine_name,
        metric=metric,
        vectors=specs[0],
        signatures=specs[1],
        sizes=specs[2],
        offsets=specs[3],
        ids_flat=specs[4],
    )
    return SharedIndexPublication(index_spec, segments)


# -- worker-side attachment -------------------------------------------

def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to a parent-owned segment without adopting its lifetime.

    Python 3.13 grew ``track=False`` for exactly this; earlier versions
    register every attachment with the resource tracker.  Our pool
    workers are spawned by the owning executor and therefore share the
    *parent's* tracker process (spawn hands down the fd), where the
    segment is already registered — the duplicate registration is a
    harmless set-add that the parent's eventual ``unlink`` balances.
    Explicitly unregistering here would instead remove the parent's own
    registration, orphaning the crash backstop and making the parent's
    ``unlink`` double-unregister.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        return shared_memory.SharedMemory(name=name)


def _attach_array(
    spec: SharedArraySpec,
) -> tuple[shared_memory.SharedMemory, np.ndarray]:
    segment = _attach_segment(spec.name)
    view: np.ndarray = np.ndarray(
        spec.shape, dtype=np.dtype(spec.dtype), buffer=segment.buf
    )
    return segment, view


class SharedBucketTable:
    """Bucket lookups over the published CSR layout — zero-copy.

    Satisfies the engine's :class:`~repro.search.engine.BucketTable`
    protocol: ``get`` binary-searches the ascending signature array and
    ``dense_layout`` hands the batch path the exact tuple the parent's
    :meth:`~repro.index.hash_table.HashTable.dense_layout` produced, so
    the ordered path takes the same layout branch it takes in-process.
    """

    def __init__(
        self,
        signatures: np.ndarray,
        sizes: np.ndarray,
        offsets: np.ndarray,
        ids_flat: np.ndarray,
    ) -> None:
        self._signatures = signatures
        self._sizes = sizes
        self._offsets = offsets
        self._ids_flat = ids_flat

    def get(self, signature: int) -> np.ndarray:
        position = int(
            np.searchsorted(self._signatures, int(signature), side="left")
        )
        if (
            position >= len(self._signatures)
            or int(self._signatures[position]) != int(signature)
        ):
            return _EMPTY_IDS
        start = int(self._offsets[position])
        return self._ids_flat[start:start + int(self._sizes[position])]

    def dense_layout(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        return (self._signatures, self._sizes, self._offsets, self._ids_flat)


class _AttachedIndex:
    """One worker's cached attachment: segments, views, rebuilt engine."""

    def __init__(self, spec: SharedIndexSpec) -> None:
        self.generation = spec.generation
        self._segments: list[shared_memory.SharedMemory] = []
        arrays: list[np.ndarray] = []
        for array_spec in (
            spec.vectors,
            spec.signatures,
            spec.sizes,
            spec.offsets,
            spec.ids_flat,
        ):
            segment, view = _attach_array(array_spec)
            self._segments.append(segment)
            arrays.append(view)
        from repro.search.engine import ExactEvaluator, QueryEngine

        self.table = SharedBucketTable(*arrays[1:])
        evaluator = ExactEvaluator(arrays[0], spec.metric)
        self.engine: QueryEngine = QueryEngine(
            evaluator, name=spec.engine_name
        )
        self.engine.rerankers["exact"] = evaluator

    def detach(self) -> None:
        # Only _attached_index calls this, with _ATTACHED_LOCK held —
        # the cache lock doubles as every attachment's mutation lock.
        segments, self._segments = self._segments, []  # reprolint: disable=RL012
        for segment in segments:
            segment.close()


_ATTACHED: dict[str, _AttachedIndex] = {}
_ATTACHED_LOCK = threading.Lock()


def _attached_index(spec: SharedIndexSpec) -> _AttachedIndex:
    """The cached attachment for ``spec.family``, re-attached when stale.

    Pool workers are single-threaded, but the lock keeps the cache safe
    if a thread-mode executor ever routes through this entry point too.
    """
    with _ATTACHED_LOCK:
        cached = _ATTACHED.get(spec.family)
        if cached is not None and cached.generation == spec.generation:
            return cached
        if cached is not None:
            cached.detach()
        fresh = _AttachedIndex(spec)
        _ATTACHED[spec.family] = fresh
        return fresh


def attached_generation(family: str) -> int | None:
    """The generation this process has attached for ``family`` (tests)."""
    with _ATTACHED_LOCK:
        cached = _ATTACHED.get(family)
        return None if cached is None else cached.generation


# -- the shard entry point --------------------------------------------

def run_ordered_shard(
    spec: SharedIndexSpec,
    queries: np.ndarray,
    plan: QueryPlan,
    scores: np.ndarray,
    bucket_signatures: np.ndarray,
) -> tuple[np.ndarray, ...]:
    """Run one contiguous query shard against the published index.

    Executes the engine's unchanged serial ordered batch path over the
    shared-memory views and packs the results into compact arrays (see
    :func:`unpack_shard_results`); the final float column is the
    shard's wall time, for the parent's per-shard telemetry.
    """
    attached = _attached_index(spec)
    with obs.span("parallel_shard") as shard_span:
        results = attached.engine._execute_batch_ordered_serial(
            queries, plan, attached.table, scores, bucket_signatures
        )
    return _pack_results(results, shard_span.duration)


def _pack_results(
    results: list[SearchResult], shard_seconds: float
) -> tuple[np.ndarray, ...]:
    n = len(results)
    lengths = np.fromiter(
        (len(r.ids) for r in results), dtype=np.int64, count=n
    )
    ids_flat = (
        np.concatenate([r.ids for r in results]) if n else _EMPTY_IDS
    )
    dists_flat = (
        np.concatenate([r.distances for r in results])
        if n
        else np.empty(0, dtype=np.float64)
    )
    stats = np.zeros((n, 6), dtype=np.float64)
    for row, result in enumerate(results):
        ctx = result.stats
        if ctx is None:
            continue
        stats[row, 0] = float(ctx.n_buckets_probed)
        stats[row, 1] = float(ctx.n_candidates)
        stats[row, 2] = float(ctx.early_stop_triggered)
        stats[row, 3] = ctx.retrieval_seconds
        stats[row, 4] = ctx.evaluation_seconds
        stats[row, 5] = ctx.total_seconds
    shard = np.array([shard_seconds], dtype=np.float64)
    return (lengths, ids_flat, dists_flat, stats, shard)


def unpack_shard_results(
    pack: tuple[np.ndarray, ...],
) -> tuple[list[SearchResult], float]:
    """Rebuild ``(results, shard_seconds)`` from one shard's pack."""
    from repro.search.engine import ExecutionContext
    from repro.search.results import SearchResult

    lengths, ids_flat, dists_flat, stats, shard = pack
    bounds = np.concatenate(([0], np.cumsum(lengths, dtype=np.int64)))
    results: list[SearchResult] = []
    for row in range(len(lengths)):
        lo, hi = int(bounds[row]), int(bounds[row + 1])
        ctx = ExecutionContext(
            n_buckets_probed=int(stats[row, 0]),
            n_candidates=int(stats[row, 1]),
            early_stop_triggered=bool(stats[row, 2]),
            retrieval_seconds=float(stats[row, 3]),
            evaluation_seconds=float(stats[row, 4]),
            total_seconds=float(stats[row, 5]),
        )
        results.append(
            SearchResult(
                ids_flat[lo:hi].copy(),
                dists_flat[lo:hi].copy(),
                ctx.n_candidates,
                ctx.n_buckets_probed,
                {"stats": ctx},
            )
        )
    return results, float(shard[0])
