"""Thread-pooled batch execution for the serving layer.

Large batches shard across a persistent thread pool: numpy releases the
GIL inside the vectorized scoring and evaluation kernels (the einsum /
BLAS calls where batch time is actually spent), so worker threads
overlap on real cores without multiprocessing's serialisation cost.

Determinism is non-negotiable: a shard is a *contiguous* slice of the
query batch, each shard runs the exact serial batch path over its
slice, and shard results are concatenated in slice order.  Both serial
batch paths are per-row independent —

* the ordered path's probe orders, ``_probe_prefix`` widths and ragged
  gathers depend only on each row's scores and the shared bucket
  layout, and :func:`repro.search.engine._ragged_distances` is
  chunk-invariant by construction;
* the streams path drains each query's own iterator;
* the post stages a plan may add (rerank, fuse, truncate) are applied
  per row from each row's own surviving pool, with no cross-row state;

so the merged output is **bit-identical** to running the whole batch
serially (enforced by tests).  The one shared mutable structure, a
table's lazily cached ``dense_layout``, is materialised on the caller's
thread before any worker starts.
"""

from __future__ import annotations

import threading
from collections.abc import Iterable
from concurrent.futures import Future, ThreadPoolExecutor
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:
    from repro.search.engine import BucketTable, QueryEngine, QueryPlan
    from repro.search.results import SearchResult

__all__ = ["ParallelBatchExecutor"]


class ParallelBatchExecutor:
    """Shard batch execution across a persistent thread pool.

    Parameters
    ----------
    n_workers:
        Worker threads (and the maximum shard count).  ``1`` degrades
        to serial execution.
    min_batch_size:
        Batches smaller than this run serially — thread dispatch costs
        more than it saves on small blocks.
    """

    def __init__(self, n_workers: int, min_batch_size: int = 64) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be positive, got {n_workers}")
        if min_batch_size < 2:
            raise ValueError(
                f"min_batch_size must be at least 2, got {min_batch_size}"
            )
        self.n_workers = n_workers
        self.min_batch_size = min_batch_size
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()

    def should_split(self, n_queries: int) -> bool:
        """Whether a batch of this size is worth sharding."""
        return self.n_workers > 1 and n_queries >= self.min_batch_size

    def _bounds(self, n_queries: int) -> list[tuple[int, int]]:
        """Contiguous, near-equal ``[lo, hi)`` shard bounds."""
        shards = min(self.n_workers, n_queries)
        edges = np.linspace(0, n_queries, shards + 1).astype(np.int64)
        return [
            (int(lo), int(hi))
            for lo, hi in zip(edges[:-1], edges[1:])
            if hi > lo
        ]

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.n_workers,
                    thread_name_prefix="repro-batch",
                )
            return self._pool

    def run_ordered(
        self,
        engine: QueryEngine,
        queries: np.ndarray,
        plan: QueryPlan,
        table: BucketTable,
        scores: np.ndarray,
        bucket_signatures: np.ndarray,
    ) -> list[SearchResult]:
        """Sharded ordered-path execution; results in batch order."""
        layout_fn = getattr(table, "dense_layout", None)
        if layout_fn is not None:
            # Materialise the lazily cached layout before workers race
            # to build it.
            layout_fn()
        pool = self._ensure_pool()
        futures: list[Future[list[SearchResult]]] = [
            pool.submit(
                engine._execute_batch_ordered_serial,
                queries[lo:hi],
                plan,
                table,
                scores[lo:hi],
                bucket_signatures,
            )
            for lo, hi in self._bounds(len(queries))
        ]
        merged: list[SearchResult] = []
        for future in futures:
            merged.extend(future.result())
        return merged

    def run_streams(
        self,
        engine: QueryEngine,
        queries: np.ndarray,
        plan: QueryPlan,
        streams: list[Iterable[np.ndarray]],
    ) -> list[SearchResult]:
        """Sharded streams-path execution; results in batch order."""
        pool = self._ensure_pool()
        futures: list[Future[list[SearchResult]]] = [
            pool.submit(
                engine._execute_batch_streams_serial,
                queries[lo:hi],
                plan,
                streams[lo:hi],
            )
            for lo, hi in self._bounds(len(streams))
        ]
        merged: list[SearchResult] = []
        for future in futures:
            merged.extend(future.result())
        return merged

    def shutdown(self) -> None:
        """Tear the pool down; a later batch lazily rebuilds it."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __repr__(self) -> str:
        return (
            f"ParallelBatchExecutor(n_workers={self.n_workers}, "
            f"min_batch_size={self.min_batch_size})"
        )
