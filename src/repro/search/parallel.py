"""Parallel batch execution for the serving layer: threads or processes.

Large batches shard across a persistent pool.  Two modes:

* ``"thread"`` — workers are threads; numpy releases the GIL inside
  the vectorized scoring kernels, so this wins only when batch time is
  BLAS/ufunc-bound.  On the numpy-light probe path the GIL serialises
  the workers and threads can *lose* to serial.
* ``"process"`` — workers are spawned processes attached zero-copy to
  shared-memory snapshots of the index (:mod:`repro.search.shm`).  The
  parent publishes each engine's vectors and bucket layout once per
  generation; workers run the unchanged serial ordered batch path over
  contiguous query shards and return compact arrays instead of pickled
  ``SearchResult`` objects.  This sidesteps the GIL entirely, at the
  price of shipping each shard's probe-score slice to the worker.

Process mode applies to the ordered batch path with an
:class:`~repro.search.engine.ExactEvaluator` (plain plans, or rerank
mode ``"exact"`` over the same vectors); everything else — the streams
path drains per-query generators that cannot cross a process boundary,
fusion needs a partner engine — falls back to the thread pool, and
below ``min_batch_size`` both modes degrade to serial execution.

Determinism is non-negotiable: a shard is a *contiguous* slice of the
query batch, each shard runs the exact serial batch path over its
slice, and shard results are concatenated in slice order.  Both serial
batch paths are per-row independent —

* the ordered path's probe orders, ``_probe_prefix`` widths and ragged
  gathers depend only on each row's scores and the shared bucket
  layout, and :func:`repro.search.engine._ragged_distances` is
  chunk-invariant by construction;
* the streams path drains each query's own iterator;
* the post stages a plan may add (rerank, fuse, truncate) are applied
  per row from each row's own surviving pool, with no cross-row state;

so the merged output is **bit-identical** to running the whole batch
serially (enforced by tests), in both modes.  The one shared mutable
structure, a table's lazily cached ``dense_layout``, is materialised
on the caller's thread before any worker starts.

Lifecycle: pools and shared-memory publications are released by
:meth:`ParallelBatchExecutor.shutdown` (also spelled ``close``, also a
context manager), and a ``weakref.finalize`` backstop tears them down
when an executor is dropped without one — worker processes and named
segments must never outlive the executor that created them.
"""

from __future__ import annotations

import threading
import weakref
from collections.abc import Callable, Iterable
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from multiprocessing import get_context
from typing import TYPE_CHECKING

import numpy as np

from repro import obs
from repro.search import shm

if TYPE_CHECKING:
    from repro.search.engine import BucketTable, QueryEngine, QueryPlan
    from repro.search.results import SearchResult

__all__ = ["ParallelBatchExecutor"]

_MODES = ("thread", "process")


class _ExecutorState:
    """Pools and publications, separated out so ``weakref.finalize`` can
    tear them down without keeping the executor itself alive."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.thread_pool: ThreadPoolExecutor | None = None
        self.process_pool: ProcessPoolExecutor | None = None
        # family token -> (generation, table weakref, publication)
        self.publications: dict[
            str,
            tuple[int, weakref.ref[object], shm.SharedIndexPublication],
        ] = {}

    def drain(
        self,
    ) -> tuple[
        ThreadPoolExecutor | None,
        ProcessPoolExecutor | None,
        list[shm.SharedIndexPublication],
    ]:
        """Atomically take everything that needs releasing."""
        with self.lock:
            thread_pool, self.thread_pool = self.thread_pool, None
            process_pool, self.process_pool = self.process_pool, None
            publications = [pub for _, _, pub in self.publications.values()]
            self.publications.clear()
        return thread_pool, process_pool, publications


def _teardown(state: _ExecutorState) -> None:
    thread_pool, process_pool, publications = state.drain()
    if thread_pool is not None:
        thread_pool.shutdown(wait=True)
    if process_pool is not None:
        process_pool.shutdown(wait=True)
    for publication in publications:
        publication.close()


class ParallelBatchExecutor:
    """Shard batch execution across a persistent worker pool.

    Parameters
    ----------
    n_workers:
        Workers (and the maximum shard count).  ``1`` degrades to
        serial execution.
    min_batch_size:
        Batches smaller than this run serially — dispatch costs more
        than it saves on small blocks.
    mode:
        ``"thread"`` (default) or ``"process"`` — see the module
        docstring for when each wins and when process mode falls back
        to threads.
    """

    def __init__(
        self,
        n_workers: int,
        min_batch_size: int = 64,
        mode: str = "thread",
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be positive, got {n_workers}")
        if min_batch_size < 2:
            raise ValueError(
                f"min_batch_size must be at least 2, got {min_batch_size}"
            )
        if mode not in _MODES:
            raise ValueError(
                f"mode must be one of {_MODES}, got {mode!r}"
            )
        self.n_workers = n_workers
        self.min_batch_size = min_batch_size
        self.mode = mode
        self._state = _ExecutorState()
        self._finalizer = weakref.finalize(self, _teardown, self._state)

    def should_split(self, n_queries: int) -> bool:
        """Whether a batch of this size is worth sharding."""
        return self.n_workers > 1 and n_queries >= self.min_batch_size

    def _bounds(self, n_queries: int) -> list[tuple[int, int]]:
        """Contiguous, near-equal ``[lo, hi)`` shard bounds."""
        shards = min(self.n_workers, n_queries)
        edges = np.linspace(0, n_queries, shards + 1).astype(np.int64)
        return [
            (int(lo), int(hi))
            for lo, hi in zip(edges[:-1], edges[1:])
            if hi > lo
        ]

    def _ensure_thread_pool(self) -> ThreadPoolExecutor:
        state = self._state
        with state.lock:
            if state.thread_pool is None:
                state.thread_pool = ThreadPoolExecutor(
                    max_workers=self.n_workers,
                    thread_name_prefix="repro-batch",
                )
            return state.thread_pool

    def _ensure_process_pool(self) -> ProcessPoolExecutor:
        state = self._state
        with state.lock:
            if state.process_pool is None:
                # Spawn, not fork: the parent holds locks and worker
                # threads a forked child would inherit mid-state.
                state.process_pool = ProcessPoolExecutor(
                    max_workers=self.n_workers,
                    mp_context=get_context("spawn"),
                )
            return state.process_pool

    # -- process-mode eligibility and publication ---------------------

    def _process_eligible(
        self, engine: QueryEngine, plan: QueryPlan, table: BucketTable
    ) -> bool:
        """Whether this ordered batch can run in worker processes.

        The worker rebuilds the engine from the published vectors and
        bucket layout, so the plan must only need what those can
        express: exact evaluation, optionally an ``"exact"`` rerank
        over the same vectors, no fusion partner.
        """
        from repro.search.engine import ExactEvaluator

        if self.mode != "process":
            return False
        if getattr(table, "dense_layout", None) is None:
            return False
        evaluator = engine.evaluator
        if not isinstance(evaluator, ExactEvaluator):
            return False
        if plan.fusion is not None:
            return False
        if plan.rerank is not None:
            if plan.rerank.mode != "exact":
                return False
            reranker = engine.rerankers.get("exact")
            if reranker is not evaluator and not (
                isinstance(reranker, ExactEvaluator)
                and reranker.metric == evaluator.metric
                and reranker._vectors() is evaluator._vectors()
            ):
                return False
        return True

    def _publication_for(
        self, engine: QueryEngine, table: BucketTable
    ) -> shm.SharedIndexPublication:
        """The current generation's publication, republishing when stale.

        Keyed by the engine's process-unique cache token; a publication
        goes stale when the engine generation moves (mutable indexes
        bump it on every mutation) or the table object itself was
        replaced.  Stale segments are closed and unlinked immediately —
        their names are never reused, so a worker holding the old spec
        cannot silently read them.
        """
        from repro.search.engine import ExactEvaluator

        family = str(engine.identity()[0])
        generation = engine.generation
        state = self._state
        with state.lock:
            cached = state.publications.get(family)
            if cached is not None:
                cached_generation, table_ref, publication = cached
                if (
                    cached_generation == generation
                    and table_ref() is table
                ):
                    return publication
        evaluator = engine.evaluator
        assert isinstance(evaluator, ExactEvaluator)
        fresh = shm.publish_index(
            family,
            generation,
            engine.name,
            evaluator.metric,
            evaluator._vectors(),
            table.dense_layout(),  # type: ignore[attr-defined]
        )
        stale: shm.SharedIndexPublication | None = None
        with state.lock:
            cached = state.publications.get(family)
            if cached is not None:
                stale = cached[2]
            state.publications[family] = (
                generation,
                weakref.ref(table),
                fresh,
            )
        if stale is not None:
            stale.close()
        return fresh

    # -- batch entry points -------------------------------------------

    def run_ordered(
        self,
        engine: QueryEngine,
        queries: np.ndarray,
        plan: QueryPlan,
        table: BucketTable,
        scores: np.ndarray,
        bucket_signatures: np.ndarray,
    ) -> list[SearchResult]:
        """Sharded ordered-path execution; results in batch order."""
        if self._process_eligible(engine, plan, table):
            return self._run_ordered_process(
                engine, queries, plan, table, scores, bucket_signatures
            )
        layout_fn = getattr(table, "dense_layout", None)
        if layout_fn is not None:
            # Materialise the lazily cached layout before workers race
            # to build it.
            layout_fn()
        pool = self._ensure_thread_pool()
        futures: list[Future[tuple[list[SearchResult], float]]] = [
            pool.submit(
                _timed_shard,
                engine._execute_batch_ordered_serial,
                queries[lo:hi],
                plan,
                table,
                scores[lo:hi],
                bucket_signatures,
            )
            for lo, hi in self._bounds(len(queries))
        ]
        merged: list[SearchResult] = []
        for future in futures:
            results, seconds = future.result()
            obs.observe_parallel_shard("thread", seconds)
            merged.extend(results)
        return merged

    def _run_ordered_process(
        self,
        engine: QueryEngine,
        queries: np.ndarray,
        plan: QueryPlan,
        table: BucketTable,
        scores: np.ndarray,
        bucket_signatures: np.ndarray,
    ) -> list[SearchResult]:
        """Ordered-path execution over shared-memory process workers."""
        publication = self._publication_for(engine, table)
        pool = self._ensure_process_pool()
        bucket_signatures = np.asarray(bucket_signatures, dtype=np.int64)
        futures: list[Future[tuple[np.ndarray, ...]]] = [
            pool.submit(
                shm.run_ordered_shard,
                publication.spec,
                queries[lo:hi],
                plan,
                scores[lo:hi],
                bucket_signatures,
            )
            for lo, hi in self._bounds(len(queries))
        ]
        merged: list[SearchResult] = []
        contexts = []
        for future in futures:
            results, seconds = shm.unpack_shard_results(future.result())
            obs.observe_parallel_shard("process", seconds)
            merged.extend(results)
            contexts.extend(r.stats for r in results)
        # Workers run with telemetry off (fresh spawned interpreters);
        # the parent records the batch against its own registry.
        obs.observe_batch(engine.name, contexts)
        return merged

    def run_streams(
        self,
        engine: QueryEngine,
        queries: np.ndarray,
        plan: QueryPlan,
        streams: list[Iterable[np.ndarray]],
    ) -> list[SearchResult]:
        """Sharded streams-path execution; results in batch order.

        Always thread-pooled: the streams are live per-query
        generators, which cannot cross a process boundary.
        """
        if len(queries) != len(streams):
            raise ValueError(
                f"queries and streams must align: got {len(queries)} "
                f"queries for {len(streams)} streams"
            )
        pool = self._ensure_thread_pool()
        futures: list[Future[tuple[list[SearchResult], float]]] = [
            pool.submit(
                _timed_shard,
                engine._execute_batch_streams_serial,
                queries[lo:hi],
                plan,
                streams[lo:hi],
            )
            for lo, hi in self._bounds(len(streams))
        ]
        merged: list[SearchResult] = []
        for future in futures:
            results, seconds = future.result()
            obs.observe_parallel_shard("thread", seconds)
            merged.extend(results)
        return merged

    def shutdown(self) -> None:
        """Release pools and shared segments; a later batch rebuilds them."""
        _teardown(self._state)

    def close(self) -> None:
        """Alias for :meth:`shutdown`, for context-manager symmetry."""
        self.shutdown()

    def __enter__(self) -> ParallelBatchExecutor:
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: object,
    ) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        return (
            f"ParallelBatchExecutor(n_workers={self.n_workers}, "
            f"min_batch_size={self.min_batch_size}, mode={self.mode!r})"
        )


def _timed_shard(
    fn: Callable[..., list[SearchResult]], *args: object
) -> tuple[list[SearchResult], float]:
    """Run one thread-mode shard under a span; return (results, seconds)."""
    with obs.span("parallel_shard") as shard_span:
        results = fn(*args)
    return results, shard_span.duration
