"""High-level ANN search indexes.

The querying pipeline of Section 2.2 — *retrieval* picks buckets and
gathers candidate ids, *evaluation* re-ranks candidates by exact
distance — is factored so every method in the paper plugs into the same
two-step loop:

* :class:`HashIndex` — L2H hash table(s) + a pluggable
  :class:`~repro.core.prober.BucketProber` (HR, GHR, QR, GQR, …), with
  multi-table probing (round-robin or global QD merge), Theorem 2 early
  stop, exact range search, and batch queries.
* :class:`MIHSearchIndex` — Multi-Index Hashing over the same codes.
* :class:`IMISearchIndex` — OPQ/PQ + inverted multi-index.

All expose ``candidate_stream(query)`` (arrays of item ids, best bucket
first) and ``search(query, k, n_candidates)``.  Evaluation supports the
metrics in :mod:`repro.index.distance` (the paper's Section 4 notes the
angular adaptation); the Theorem 2 bound is Euclidean-only.
"""

from __future__ import annotations

import heapq
import time
from collections.abc import Iterator

import numpy as np

from repro.core.gqr import GQR
from repro.core.quantization_distance import theorem2_mu
from repro.hashing.base import BinaryHasher, ProjectionHasher
from repro.index.distance import METRICS, pairwise_distances
from repro.index.hash_table import HashTable
from repro.index.mih import MultiIndexHashing
from repro.probing.base import BucketProber
from repro.quantization.imi import InvertedMultiIndex
from repro.search.results import SearchResult

__all__ = [
    "HashIndex",
    "MIHSearchIndex",
    "IMISearchIndex",
    "evaluate_candidates",
]


def evaluate_candidates(
    query: np.ndarray,
    data: np.ndarray,
    candidate_ids: np.ndarray,
    k: int,
    metric: str = "euclidean",
) -> tuple[np.ndarray, np.ndarray]:
    """Exact re-rank of candidates; returns top-``k`` ``(ids, distances)``.

    The evaluation step shared by every querying method: compute true
    distances to the retrieved items under ``metric`` and keep the k
    best (ties broken by id).
    """
    if not len(candidate_ids):
        empty = np.empty(0, dtype=np.int64)
        return empty, np.empty(0, dtype=np.float64)
    dists = pairwise_distances(
        query[np.newaxis, :], data[candidate_ids], metric
    )[0]
    keep = min(k, len(candidate_ids))
    if keep < len(candidate_ids):
        part = np.argpartition(dists, keep - 1)[:keep]
    else:
        part = np.arange(len(candidate_ids))
    order = np.lexsort((candidate_ids[part], dists[part]))
    chosen = part[order]
    return candidate_ids[chosen], dists[chosen]


def _collect(stream: Iterator[np.ndarray], n_candidates: int):
    """Drain a candidate stream to at least ``n_candidates`` ids."""
    found: list[np.ndarray] = []
    total = 0
    batches = 0
    for ids in stream:
        batches += 1
        found.append(ids)
        total += len(ids)
        if total >= n_candidates:
            break
    candidates = np.concatenate(found) if found else np.empty(0, dtype=np.int64)
    return candidates, total, batches


class HashIndex:
    """L2H index: one or more hash tables plus a querying method.

    Parameters
    ----------
    hasher:
        A fitted or unfitted :class:`BinaryHasher`; unfitted hashers are
        fit on ``data``.  For multiple tables pass a *list* of hashers
        (e.g. ITQ instances with different seeds), one per table.
    data:
        ``(n, d)`` indexed items; retained for exact evaluation.
    prober:
        The querying method; defaults to :class:`~repro.core.gqr.GQR`.
    metric:
        Evaluation metric — a key of :data:`repro.index.distance.METRICS`.
    multi_table_strategy:
        How to interleave probe orders across tables: ``"round_robin"``
        (one bucket from each table in turn, the paper's scheme) or
        ``"qd_merge"`` (a heap-merge of the tables' scored streams into
        one globally ascending-QD order; requires a prober with
        ``probe_scored``, i.e. GQR).
    """

    def __init__(
        self,
        hasher: BinaryHasher | list[BinaryHasher],
        data: np.ndarray,
        prober: BucketProber | None = None,
        metric: str = "euclidean",
        multi_table_strategy: str = "round_robin",
    ) -> None:
        self._data = np.asarray(data, dtype=np.float64)
        if self._data.ndim != 2:
            raise ValueError("data must be a (n, d) array")
        if metric not in METRICS:
            raise KeyError(
                f"unknown metric {metric!r}; options: {sorted(METRICS)}"
            )
        if multi_table_strategy not in ("round_robin", "qd_merge"):
            raise ValueError(
                "multi_table_strategy must be 'round_robin' or 'qd_merge'"
            )
        hashers = list(hasher) if isinstance(hasher, (list, tuple)) else [hasher]
        if not hashers:
            raise ValueError("need at least one hasher")
        lengths = {h.code_length for h in hashers}
        if len(lengths) != 1:
            raise ValueError("all hashers must share one code length")
        for h in hashers:
            if not h.is_fitted:
                h.fit(self._data)
        self._hashers = hashers
        self._tables = [HashTable(h.encode(self._data)) for h in hashers]
        self._prober = prober if prober is not None else GQR()
        self._metric = metric
        self._multi_table_strategy = multi_table_strategy

    @property
    def data(self) -> np.ndarray:
        return self._data

    @property
    def num_items(self) -> int:
        return len(self._data)

    @property
    def num_tables(self) -> int:
        return len(self._tables)

    @property
    def code_length(self) -> int:
        return self._hashers[0].code_length

    @property
    def metric(self) -> str:
        return self._metric

    @property
    def tables(self) -> list[HashTable]:
        return list(self._tables)

    @property
    def prober(self) -> BucketProber:
        return self._prober

    @prober.setter
    def prober(self, prober: BucketProber) -> None:
        self._prober = prober

    def memory_footprint(self) -> dict[str, int]:
        """Approximate bytes held by each component.

        ``tables`` is the part that scales with the number of hash
        tables — the cost axis of the paper's Figure 12 comparison
        (single-table GQR vs multi-table GHR).
        """
        return {
            "data": int(self._data.nbytes),
            "tables": int(sum(t.memory_bytes() for t in self._tables)),
            "num_tables": len(self._tables),
        }

    # -- retrieval ----------------------------------------------------

    def candidate_stream(self, query: np.ndarray) -> Iterator[np.ndarray]:
        """Arrays of item ids, one per probed non-empty bucket.

        With multiple tables, probing either round-robins across the
        tables' probe orders (the paper's multi-hash-table strategy,
        Section 6.3.5) or heap-merges the scored streams into one
        globally ascending-QD order; duplicates across tables are
        suppressed either way.
        """
        query = np.asarray(query, dtype=np.float64)
        if len(self._tables) == 1:
            signature, costs = self._hashers[0].probe_info(query)
            table = self._tables[0]
            for bucket in self._prober.probe(table, signature, costs):
                ids = table.get(bucket)
                if len(ids):
                    yield ids
            return
        if self._multi_table_strategy == "qd_merge":
            yield from self._qd_merged_stream(query)
        else:
            yield from self._round_robin_stream(query)

    def _round_robin_stream(self, query: np.ndarray) -> Iterator[np.ndarray]:
        streams = []
        for hasher, table in zip(self._hashers, self._tables):
            signature, costs = hasher.probe_info(query)
            streams.append(self._prober.probe(table, signature, costs))
        seen = np.zeros(self.num_items, dtype=bool)
        active = list(zip(streams, self._tables))
        while active:
            still_active = []
            for stream, table in active:
                bucket = next(stream, None)
                if bucket is None:
                    continue
                still_active.append((stream, table))
                ids = table.get(bucket)
                if len(ids):
                    fresh = ids[~seen[ids]]
                    if len(fresh):
                        seen[fresh] = True
                        yield fresh
            active = still_active

    def _qd_merged_stream(self, query: np.ndarray) -> Iterator[np.ndarray]:
        """Global ascending-QD merge of all tables' scored probe streams.

        A bucket with small quantization distance is a good bucket in
        *any* table, so merging by score probes the globally best bucket
        next instead of strictly alternating tables.
        """
        if not hasattr(self._prober, "probe_scored"):
            raise TypeError(
                "qd_merge needs a prober with probe_scored (e.g. GQR)"
            )
        streams = []
        for hasher, table in zip(self._hashers, self._tables):
            signature, costs = hasher.probe_info(query)
            streams.append(
                iter(self._prober.probe_scored(table, signature, costs))
            )
        heap: list[tuple[float, int, int]] = []  # (qd, table_idx, bucket)
        for idx, stream in enumerate(streams):
            first = next(stream, None)
            if first is not None:
                bucket, qd = first
                heap.append((qd, idx, bucket))
        heapq.heapify(heap)
        seen = np.zeros(self.num_items, dtype=bool)
        while heap:
            _, idx, bucket = heapq.heappop(heap)
            ids = self._tables[idx].get(bucket)
            if len(ids):
                fresh = ids[~seen[ids]]
                if len(fresh):
                    seen[fresh] = True
                    yield fresh
            upcoming = next(streams[idx], None)
            if upcoming is not None:
                next_bucket, qd = upcoming
                heapq.heappush(heap, (qd, idx, next_bucket))

    # -- evaluation ---------------------------------------------------

    def search(
        self,
        query: np.ndarray,
        k: int,
        n_candidates: int | None = None,
        max_buckets: int | None = None,
        time_budget: float | None = None,
    ) -> SearchResult:
        """Approximate kNN with the paper's pluggable stopping criteria.

        Retrieval stops at whichever bound is hit first (Algorithm 1's
        remark that "other stopping criteria can also be used"):

        * ``n_candidates`` — collect at least this many candidate ids;
        * ``max_buckets`` — probe at most this many non-empty buckets;
        * ``time_budget`` — stop retrieving after this many seconds.

        At least one criterion must be given.  Collected candidates are
        exactly re-ranked and the top-``k`` returned.
        """
        if n_candidates is None and max_buckets is None and time_budget is None:
            raise ValueError(
                "give at least one stopping criterion: n_candidates, "
                "max_buckets or time_budget"
            )
        query = np.asarray(query, dtype=np.float64)
        deadline = (
            None if time_budget is None else time.perf_counter() + time_budget
        )
        found: list[np.ndarray] = []
        total = 0
        buckets = 0
        for ids in self.candidate_stream(query):
            buckets += 1
            found.append(ids)
            total += len(ids)
            if n_candidates is not None and total >= n_candidates:
                break
            if max_buckets is not None and buckets >= max_buckets:
                break
            if deadline is not None and time.perf_counter() >= deadline:
                break
        candidates = (
            np.concatenate(found) if found else np.empty(0, dtype=np.int64)
        )
        ids, dists = evaluate_candidates(
            query, self._data, candidates, k, self._metric
        )
        return SearchResult(ids, dists, total, buckets)

    def search_batch(
        self, queries: np.ndarray, k: int, n_candidates: int
    ) -> list[SearchResult]:
        """``search`` over a query batch.

        Single-table indexes amortise the projection step: all queries'
        codes and flip costs come from one matmul
        (:meth:`BinaryHasher.probe_info_batch`); results are identical
        to mapping :meth:`search` over the rows.
        """
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if len(self._tables) != 1:
            return [self.search(q, k, n_candidates) for q in queries]
        table = self._tables[0]
        infos = self._hashers[0].probe_info_batch(queries)
        results = []
        for query, (signature, costs) in zip(queries, infos):
            found: list[np.ndarray] = []
            total = 0
            buckets = 0
            for bucket in self._prober.probe(table, signature, costs):
                ids = table.get(bucket)
                if not len(ids):
                    continue
                buckets += 1
                found.append(ids)
                total += len(ids)
                if total >= n_candidates:
                    break
            candidates = (
                np.concatenate(found) if found
                else np.empty(0, dtype=np.int64)
            )
            ids, dists = evaluate_candidates(
                query, self._data, candidates, k, self._metric
            )
            results.append(SearchResult(ids, dists, total, buckets))
        return results

    def search_early_stop(
        self, query: np.ndarray, k: int, max_candidates: int | None = None
    ) -> SearchResult:
        """Exact-pruning search with the Theorem 2 bound (single table).

        Probes buckets in ascending QD and stops once the bound
        ``µ·dist(q, b)`` of the next bucket exceeds the current k-th
        nearest distance — at that point no unprobed bucket can contain
        a closer item, so the returned neighbours are exact.

        Requires a GQR prober, a hasher with a linear hashing matrix
        (the bound needs ``M = σ_max(H)``), and the Euclidean metric.
        """
        prober, hasher, mu = self._early_stop_setup()
        query = np.asarray(query, dtype=np.float64)
        signature, costs = hasher.probe_info(query)
        table = self._tables[0]
        if max_candidates is None:
            max_candidates = self.num_items

        total = 0
        buckets = 0
        kth_distance = np.inf
        best: list[tuple[float, int]] = []
        for bucket, qd in prober.probe_scored(table, signature, costs):
            if mu * qd > kth_distance:
                break
            ids = table.get(bucket)
            buckets += 1
            if not len(ids):
                continue
            total += len(ids)
            dists = pairwise_distances(
                query[np.newaxis, :], self._data[ids], "euclidean"
            )[0]
            for item_id, dist in zip(ids, dists):
                best.append((float(dist), int(item_id)))
            best.sort()
            del best[k:]
            if len(best) == k:
                kth_distance = best[-1][0]
            if total >= max_candidates:
                break

        ids = np.asarray([item for _, item in best], dtype=np.int64)
        dists = np.asarray([dist for dist, _ in best], dtype=np.float64)
        return SearchResult(
            ids, dists, total, buckets, extras={"stopped_early": bool(best)}
        )

    def search_range(self, query: np.ndarray, radius: float) -> SearchResult:
        """All items within ``radius`` of the query — *exactly*.

        Section 4.1's early-stop criterion for distance-threshold
        queries: probing stops once every unprobed bucket satisfies
        ``µ·dist(q, b) > radius``; by Theorem 2 none of their items can
        lie within the radius.  Same preconditions as
        :meth:`search_early_stop`.
        """
        if radius < 0:
            raise ValueError("radius must be non-negative")
        prober, hasher, mu = self._early_stop_setup()
        query = np.asarray(query, dtype=np.float64)
        signature, costs = hasher.probe_info(query)
        table = self._tables[0]

        hits: list[tuple[float, int]] = []
        total = 0
        buckets = 0
        for bucket, qd in prober.probe_scored(table, signature, costs):
            if mu * qd > radius:
                break
            ids = table.get(bucket)
            buckets += 1
            if not len(ids):
                continue
            total += len(ids)
            dists = pairwise_distances(
                query[np.newaxis, :], self._data[ids], "euclidean"
            )[0]
            hits.extend(
                (float(d), int(i)) for i, d in zip(ids, dists) if d <= radius
            )
        hits.sort()
        ids = np.asarray([item for _, item in hits], dtype=np.int64)
        dists = np.asarray([dist for dist, _ in hits], dtype=np.float64)
        return SearchResult(ids, dists, total, buckets)

    def _early_stop_setup(self):
        """Shared preconditions of the Theorem 2 search modes."""
        if len(self._tables) != 1:
            raise ValueError("early stop is defined for a single table")
        if self._metric != "euclidean":
            raise ValueError("the Theorem 2 bound is Euclidean-only")
        hasher = self._hashers[0]
        if not isinstance(hasher, ProjectionHasher):
            raise TypeError("early stop needs a hasher with a hashing matrix")
        if not isinstance(self._prober, GQR):
            raise TypeError("early stop needs a GQR prober")
        return self._prober, hasher, theorem2_mu(hasher.hashing_matrix)


class MIHSearchIndex:
    """Multi-Index Hashing as a querying method over L2H codes."""

    def __init__(
        self,
        hasher: BinaryHasher,
        data: np.ndarray,
        num_blocks: int = 2,
        metric: str = "euclidean",
    ) -> None:
        self._data = np.asarray(data, dtype=np.float64)
        if not hasher.is_fitted:
            hasher.fit(self._data)
        self._hasher = hasher
        self._mih = MultiIndexHashing(hasher.encode(self._data), num_blocks)
        self._metric = metric

    @property
    def num_items(self) -> int:
        return len(self._data)

    def candidate_stream(self, query: np.ndarray) -> Iterator[np.ndarray]:
        query = np.asarray(query, dtype=np.float64)
        signature, _ = self._hasher.probe_info(query)
        for _, ids in self._mih.probe_increasing(signature):
            if len(ids):
                yield ids

    def search(self, query: np.ndarray, k: int, n_candidates: int) -> SearchResult:
        query = np.asarray(query, dtype=np.float64)
        candidates, total, rings = _collect(
            self.candidate_stream(query), n_candidates
        )
        ids, dists = evaluate_candidates(
            query, self._data, candidates, k, self._metric
        )
        return SearchResult(ids, dists, total, rings)


class IMISearchIndex:
    """OPQ/PQ + inverted multi-index (the VQ comparator of Section 6.5).

    Parameters
    ----------
    quantizer:
        A fitted 2-subspace (O)PQ defining the IMI grid.
    data:
        The ``(n, d)`` indexed items.
    rerank_quantizer:
        Optional *fine* :class:`~repro.quantization.pq.ProductQuantizer`
        (typically many subspaces).  When given, candidates are scored
        with asymmetric distance computation (ADC) over their compressed
        codes instead of raw vectors — the memory-saving mode real VQ
        systems run in; results become approximate.
    """

    def __init__(
        self,
        quantizer,
        data: np.ndarray,
        metric: str = "euclidean",
        rerank_quantizer=None,
    ) -> None:
        self._data = np.asarray(data, dtype=np.float64)
        self._imi = InvertedMultiIndex(quantizer, self._data)
        self._metric = metric
        self._fine = rerank_quantizer
        if rerank_quantizer is not None:
            if not rerank_quantizer.codebooks:
                rerank_quantizer.fit(self._data)
            self._fine_codes = rerank_quantizer.encode(self._data)

    @property
    def num_items(self) -> int:
        return len(self._data)

    def candidate_stream(self, query: np.ndarray) -> Iterator[np.ndarray]:
        yield from self._imi.probe(np.asarray(query, dtype=np.float64))

    def _adc_rerank(
        self, query: np.ndarray, candidates: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray]:
        tables = self._fine.distance_tables(query)
        codes = self._fine_codes[candidates]
        approx = np.zeros(len(candidates), dtype=np.float64)
        for subspace, table in enumerate(tables):
            approx += table[codes[:, subspace]]
        keep = min(k, len(candidates))
        part = (
            np.argpartition(approx, keep - 1)[:keep]
            if keep < len(candidates)
            else np.arange(len(candidates))
        )
        order = np.lexsort((candidates[part], approx[part]))
        chosen = part[order]
        return candidates[chosen], np.sqrt(np.maximum(approx[chosen], 0.0))

    def search(self, query: np.ndarray, k: int, n_candidates: int) -> SearchResult:
        query = np.asarray(query, dtype=np.float64)
        candidates, total, cells = _collect(
            self.candidate_stream(query), n_candidates
        )
        if self._fine is not None and len(candidates):
            ids, dists = self._adc_rerank(query, candidates, k)
        else:
            ids, dists = evaluate_candidates(
                query, self._data, candidates, k, self._metric
            )
        return SearchResult(ids, dists, total, cells)
