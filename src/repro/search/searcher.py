"""High-level ANN search indexes.

The querying pipeline of Section 2.2 — *retrieval* picks buckets and
gathers candidate ids, *evaluation* re-ranks candidates by exact
distance — lives once in :mod:`repro.search.engine`; the classes here
are thin adapters that build :class:`~repro.search.engine.QueryPlan`
instances and delegate:

* :class:`HashIndex` — L2H hash table(s) + a pluggable
  :class:`~repro.core.prober.BucketProber` (HR, GHR, QR, GQR, …), with
  multi-table probing (round-robin or global QD merge), Theorem 2 early
  stop, exact range search, and genuinely batched queries.
* :class:`MIHSearchIndex` — Multi-Index Hashing over the same codes.
* :class:`IMISearchIndex` — OPQ/PQ + inverted multi-index.

All expose ``candidate_stream(query)`` (arrays of item ids, best bucket
first) and ``search(query, k, n_candidates)``.  Evaluation supports the
metrics in :mod:`repro.index.distance` (the paper's Section 4 notes the
angular adaptation); the Theorem 2 bound is Euclidean-only.  Every
result carries the engine's :class:`~repro.search.engine.ExecutionContext`
under ``extras["stats"]``.
"""

from __future__ import annotations

import threading
from collections.abc import Iterator

import numpy as np

from repro import obs
from repro.core.gqr import GQR
from repro.core.quantization_distance import theorem2_mu
from repro.hashing.base import BinaryHasher, ProjectionHasher
from repro.index.codes import pack_bits, unpack_bits
from repro.index.distance import METRICS
from repro.index.hash_table import HashTable
from repro.index.mih import MultiIndexHashing
from repro.probing.base import BucketProber
from repro.quantization.imi import InvertedMultiIndex
from repro.quantization.opq import OptimizedProductQuantizer
from repro.quantization.pq import ProductQuantizer
from repro.search.cache import QueryResultCache
from repro.search.engine import (
    ADCEvaluator,
    CandidatePipeline,
    CodeEvaluator,
    Evaluator,
    ExactEvaluator,
    ExecutionContext,
    QueryEngine,
    QueryPlan,
    qd_merged_scored_stream,
    round_robin_stream,
    validate_query,
    validate_query_batch,
)
from repro.search.parallel import ParallelBatchExecutor
from repro.search.results import SearchResult
from repro.search.stages import (
    FusableIndex,
    FusionSpec,
    IndexFusionPartner,
    RerankSpec,
)

__all__ = [
    "HashIndex",
    "MIHSearchIndex",
    "IMISearchIndex",
    "evaluate_candidates",
]


def evaluate_candidates(
    query: np.ndarray,
    data: np.ndarray,
    candidate_ids: np.ndarray,
    k: int,
    metric: str = "euclidean",
) -> tuple[np.ndarray, np.ndarray]:
    """Exact re-rank of candidates; returns top-``k`` ``(ids, distances)``.

    The evaluation step shared by every querying method: compute true
    distances to the retrieved items under ``metric`` and keep the k
    best (ties broken by id).  Kept as a function for callers outside
    the engine; internally it is the engine's exact evaluation rule.
    """
    if not len(candidate_ids):
        empty = np.empty(0, dtype=np.int64)
        return empty, np.empty(0, dtype=np.float64)
    dists = ExactEvaluator(data, metric).distances(query, candidate_ids)
    return CandidatePipeline.top_k(candidate_ids, dists, k)


class HashIndex:
    """L2H index: one or more hash tables plus a querying method.

    Parameters
    ----------
    hasher:
        A fitted or unfitted :class:`BinaryHasher`; unfitted hashers are
        fit on ``data``.  For multiple tables pass a *list* of hashers
        (e.g. ITQ instances with different seeds), one per table.
    data:
        ``(n, d)`` indexed items; retained for exact evaluation.
    prober:
        The querying method; defaults to :class:`~repro.core.gqr.GQR`.
    metric:
        Evaluation metric — a key of :data:`repro.index.distance.METRICS`.
    multi_table_strategy:
        How to interleave probe orders across tables: ``"round_robin"``
        (one bucket from each table in turn, the paper's scheme) or
        ``"qd_merge"`` (a heap-merge of the tables' scored streams into
        one globally ascending-QD order; requires a prober with
        ``probe_scored``, i.e. GQR).
    cache:
        Optional :class:`~repro.search.cache.QueryResultCache`; repeated
        queries under the same plan return the cached result.
    parallel:
        Optional :class:`~repro.search.parallel.ParallelBatchExecutor`;
        ``search_batch`` shards large batches across its worker pool —
        threads, or shared-memory processes in ``mode="process"``.
        Call :meth:`close` (or use the index as a context manager) to
        release the workers when done.
    evaluation:
        The evaluation stage's scoring rule: ``"exact"`` (true
        distances over raw vectors, the default) or ``"code"``
        (asymmetric quantization distance over the first table's codes
        — the vector-free estimate; pair it with a rerank stage to
        recover exact quality on the surviving pool).
    rerank_quantizer:
        Optional fine :class:`~repro.quantization.pq.ProductQuantizer`;
        when given, plans may request ``RerankSpec(mode="adc")`` to
        re-score the candidate pool with asymmetric distance over its
        codes.  ``RerankSpec(mode="exact")`` is always available.
    """

    def __init__(
        self,
        hasher: BinaryHasher | list[BinaryHasher],
        data: np.ndarray,
        prober: BucketProber | None = None,
        metric: str = "euclidean",
        multi_table_strategy: str = "round_robin",
        cache: QueryResultCache | None = None,
        parallel: ParallelBatchExecutor | None = None,
        evaluation: str = "exact",
        rerank_quantizer: ProductQuantizer | None = None,
    ) -> None:
        self._data = np.asarray(data, dtype=np.float64)
        if self._data.ndim != 2:
            raise ValueError("data must be a (n, d) array")
        if metric not in METRICS:
            raise KeyError(
                f"unknown metric {metric!r}; options: {sorted(METRICS)}"
            )
        if multi_table_strategy not in ("round_robin", "qd_merge"):
            raise ValueError(
                "multi_table_strategy must be 'round_robin' or 'qd_merge'"
            )
        if evaluation not in ("exact", "code"):
            raise ValueError("evaluation must be 'exact' or 'code'")
        hashers = list(hasher) if isinstance(hasher, (list, tuple)) else [hasher]
        if not hashers:
            raise ValueError("need at least one hasher")
        lengths = {h.code_length for h in hashers}
        if len(lengths) != 1:
            raise ValueError("all hashers must share one code length")
        for h in hashers:
            if not h.is_fitted:
                h.fit(self._data)
        self._hashers = hashers
        codes_per_table = [h.encode(self._data) for h in hashers]
        self._tables = [HashTable(codes) for codes in codes_per_table]
        self._prober = prober if prober is not None else GQR()
        self._metric = metric
        self._multi_table_strategy = multi_table_strategy
        self._evaluation = evaluation
        self._dim = self._data.shape[1]
        self._exact = ExactEvaluator(self._data, metric)
        self._evaluator: Evaluator
        if evaluation == "code":
            signatures = np.atleast_1d(
                np.asarray(pack_bits(codes_per_table[0]), dtype=np.int64)
            )
            self._evaluator = CodeEvaluator(
                hashers[0], signatures, "asymmetric"
            )
        else:
            self._evaluator = self._exact
        self._engine = QueryEngine(
            self._evaluator, name="hash", cache=cache, parallel=parallel
        )
        self._engine.rerankers["exact"] = self._exact
        if rerank_quantizer is not None:
            if not rerank_quantizer.codebooks:
                rerank_quantizer.fit(self._data)
            self._engine.rerankers["adc"] = ADCEvaluator(
                rerank_quantizer, rerank_quantizer.encode(self._data)
            )
        # Per-table (signatures, unpacked bits), lazily built for
        # batched scoring; the tables are static but concurrent batch
        # workers may race to build an entry on first use.
        self._bucket_bits: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._bucket_bits_lock = threading.Lock()

    @property
    def data(self) -> np.ndarray:
        return self._data

    @property
    def num_items(self) -> int:
        return len(self._data)

    @property
    def num_tables(self) -> int:
        return len(self._tables)

    @property
    def code_length(self) -> int:
        return self._hashers[0].code_length

    @property
    def metric(self) -> str:
        return self._metric

    @property
    def multi_table_strategy(self) -> str:
        """How probe orders interleave across tables (see ``__init__``)."""
        return self._multi_table_strategy

    @property
    def evaluation(self) -> str:
        """The evaluation stage's scoring rule (``"exact"`` / ``"code"``)."""
        return self._evaluation

    @property
    def cache(self) -> QueryResultCache | None:
        """The engine's result cache, if one is attached."""
        return self._engine.cache

    @property
    def tables(self) -> list[HashTable]:
        return list(self._tables)

    @property
    def prober(self) -> BucketProber:
        return self._prober

    @prober.setter
    def prober(self, prober: BucketProber) -> None:
        self._prober = prober

    @property
    def engine(self) -> QueryEngine:
        """The query-execution engine this index delegates to."""
        return self._engine

    def close(self) -> None:
        """Release the attached parallel executor's workers (idempotent).

        Worker pools (threads, or processes plus their shared-memory
        segments) are not garbage-collected promptly; an index that
        owns a :class:`~repro.search.parallel.ParallelBatchExecutor`
        must release them deterministically.  Safe to call repeatedly;
        a later batch lazily rebuilds the pool.  ``HashIndex`` is also
        a context manager: ``with HashIndex(...) as index: ...``.
        """
        parallel = self._engine.parallel
        if parallel is not None:
            parallel.shutdown()

    def __enter__(self) -> HashIndex:
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: object,
    ) -> None:
        self.close()

    def memory_footprint(self) -> dict[str, int]:
        """Approximate bytes held by each component.

        ``tables`` is the part that scales with the number of hash
        tables — the cost axis of the paper's Figure 12 comparison
        (single-table GQR vs multi-table GHR).
        """
        return {
            "data": int(self._data.nbytes),
            "tables": int(sum(t.memory_bytes() for t in self._tables)),
            "num_tables": len(self._tables),
        }

    def plan(
        self,
        k: int,
        n_candidates: int | None = None,
        max_buckets: int | None = None,
        time_budget: float | None = None,
        rerank: RerankSpec | None = None,
        fusion: FusionSpec | None = None,
    ) -> QueryPlan:
        """Build the :class:`QueryPlan` a ``search`` call would execute."""
        return QueryPlan(
            k=k,
            n_candidates=n_candidates,
            max_buckets=max_buckets,
            time_budget=time_budget,
            metric=self._metric,
            multi_table_strategy=self._multi_table_strategy,
            rerank=rerank,
            fusion=fusion,
        )

    def fuse_with(
        self, partner: FusableIndex, n_candidates: int | None = None
    ) -> None:
        """Attach ``partner`` as this index's fusion counterpart.

        After attaching, plans carrying a
        :class:`~repro.search.stages.FusionSpec` linearly fuse this
        index's ranked list with the partner's (another hasher, an IMI,
        a compact index — anything engine-backed).  ``n_candidates``
        fixes the partner's candidate budget; by default it inherits
        each plan's own budget (matched-budget fusion).
        """
        self._engine.fusion_partner = IndexFusionPartner(
            partner, n_candidates
        )

    # -- retrieval ----------------------------------------------------

    def _probe_infos(self, query: np.ndarray) -> list[tuple[int, np.ndarray]]:
        """Per-table ``(signature, flip_costs)`` for one query."""
        return [hasher.probe_info(query) for hasher in self._hashers]

    def _bucket_batch_info(
        self, table_index: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Cached (ascending signatures, unpacked bits) of one table."""
        cached = self._bucket_bits.get(table_index)
        if cached is None:
            # Double-checked: the fast path stays lock-free once built
            # (tuple assignment is atomic), losers of the build race
            # just re-read the winner's entry.
            with self._bucket_bits_lock:
                cached = self._bucket_bits.get(table_index)
                if cached is None:
                    table = self._tables[table_index]
                    signatures = table.dense_layout()[0]
                    cached = (
                        signatures,
                        unpack_bits(signatures, table.code_length),
                    )
                    self._bucket_bits[table_index] = cached
        return cached

    def candidate_stream(
        self,
        query: np.ndarray,
        probe_infos: list[tuple[int, np.ndarray]] | None = None,
    ) -> Iterator[np.ndarray]:
        """Arrays of item ids, one per probed non-empty bucket.

        With multiple tables, probing either round-robins across the
        tables' probe orders (the paper's multi-hash-table strategy,
        Section 6.3.5) or heap-merges the scored streams into one
        globally ascending-QD order; duplicates across tables are
        suppressed either way.  ``probe_infos`` lets batched callers
        supply precomputed signatures/costs so hashing happens once per
        table for a whole batch.
        """
        query = validate_query(query, self._dim)
        if probe_infos is None:
            probe_infos = self._probe_infos(query)
        if len(self._tables) == 1:
            signature, costs = probe_infos[0]
            table = self._tables[0]
            for bucket in self._prober.probe(table, signature, costs):
                ids = table.get(bucket)
                if len(ids):
                    yield ids
            return
        if self._multi_table_strategy == "qd_merge":
            for _, ids in self.scored_stream(query, probe_infos):
                yield ids
        else:
            streams = [
                self._prober.probe(table, signature, costs)
                for table, (signature, costs) in zip(self._tables, probe_infos)
            ]
            yield from round_robin_stream(
                streams, self._tables, self.num_items
            )

    def scored_stream(
        self,
        query: np.ndarray,
        probe_infos: list[tuple[int, np.ndarray]] | None = None,
    ) -> Iterator[tuple[float, np.ndarray]]:
        """The globally merged ``(qd, fresh_ids)`` stream across tables.

        Exposes the ``qd_merge`` strategy's ordering invariant: the
        yielded quantization distances are non-decreasing (Properties
        1–2 / Theorem 2's ordering guarantee), whatever the number of
        tables.
        """
        if not hasattr(self._prober, "probe_scored"):
            raise TypeError(
                "qd_merge needs a prober with probe_scored (e.g. GQR)"
            )
        query = validate_query(query, self._dim)
        if probe_infos is None:
            probe_infos = self._probe_infos(query)
        scored = [
            self._prober.probe_scored(table, signature, costs)
            for table, (signature, costs) in zip(self._tables, probe_infos)
        ]
        return qd_merged_scored_stream(scored, self._tables, self.num_items)

    # -- evaluation ---------------------------------------------------

    def search(
        self,
        query: np.ndarray,
        k: int,
        n_candidates: int | None = None,
        max_buckets: int | None = None,
        time_budget: float | None = None,
        rerank: RerankSpec | None = None,
        fusion: FusionSpec | None = None,
    ) -> SearchResult:
        """Approximate kNN with the paper's pluggable stopping criteria.

        Retrieval stops at whichever bound is hit first (Algorithm 1's
        remark that "other stopping criteria can also be used"):

        * ``n_candidates`` — collect at least this many candidate ids;
        * ``max_buckets`` — probe at most this many non-empty buckets;
        * ``time_budget`` — stop retrieving after this many seconds.

        At least one criterion must be given.  Collected candidates are
        re-ranked by the evaluation stage and the top-``k`` returned;
        ``rerank`` / ``fusion`` switch on the optional pipeline stages
        (see :meth:`plan`).
        """
        plan = self.plan(
            k, n_candidates, max_buckets, time_budget, rerank, fusion
        )
        query = validate_query(query, self._dim)
        return self._engine.execute(query, plan, self.candidate_stream(query))

    def search_batch(
        self,
        queries: np.ndarray,
        k: int,
        n_candidates: int,
        rerank: RerankSpec | None = None,
        fusion: FusionSpec | None = None,
    ) -> list[SearchResult]:
        """``search`` over a query batch, genuinely batched.

        The whole batch issues exactly one projection/encode call per
        table (:meth:`BinaryHasher.probe_info_batch`).  For probers with
        vectorised bucket scoring (HR, QR, GQR) on a single table, the
        per-query probe orders additionally come from one shared score
        matrix, and evaluation is amortised into one
        ``pairwise_distances`` call over the block's candidate union.
        Results are identical to mapping :meth:`search` over the rows.
        """
        queries = validate_query_batch(queries, self._dim)
        if not len(queries):
            return []
        plan = self.plan(k, n_candidates, rerank=rerank, fusion=fusion)
        infos_per_table = [
            hasher.probe_info_batch(queries) for hasher in self._hashers
        ]
        if len(self._tables) == 1:
            table = self._tables[0]
            infos = infos_per_table[0]
            signatures = np.fromiter(
                (sig for sig, _ in infos), dtype=np.int64, count=len(infos)
            )
            cost_matrix = np.stack([costs for _, costs in infos])
            bucket_signatures, bucket_bits = self._bucket_batch_info(0)
            scores = self._prober.batch_scores(
                bucket_signatures,
                bucket_bits,
                signatures,
                unpack_bits(signatures, table.code_length),
                cost_matrix,
            )
            if scores is not None:
                return self._engine.execute_batch_ordered(
                    queries, plan, table, scores, bucket_signatures
                )
        streams = [
            self.candidate_stream(
                query,
                [infos[qi] for infos in infos_per_table],
            )
            for qi, query in enumerate(queries)
        ]
        return self._engine.execute_batch_streams(queries, plan, streams)

    def search_early_stop(
        self, query: np.ndarray, k: int, max_candidates: int | None = None
    ) -> SearchResult:
        """Exact-pruning search with the Theorem 2 bound (single table).

        Probes buckets in ascending QD and stops once the bound
        ``µ·dist(q, b)`` of the next bucket exceeds the current k-th
        nearest distance — at that point no unprobed bucket can contain
        a closer item, so the returned neighbours are exact.

        Requires a GQR prober, a hasher with a linear hashing matrix
        (the bound needs ``M = σ_max(H)``), and the Euclidean metric.
        """
        prober, hasher, mu = self._early_stop_setup()
        query = validate_query(query, self._dim)
        signature, costs = hasher.probe_info(query)
        table = self._tables[0]
        if max_candidates is None:
            max_candidates = self.num_items

        ctx = ExecutionContext()
        kth_distance = np.inf
        best: list[tuple[float, int]] = []
        with obs.span("query") as root:
            for bucket, qd in prober.probe_scored(table, signature, costs):
                if mu * qd > kth_distance:
                    ctx.early_stop_triggered = True
                    break
                ids = table.get(bucket)
                ctx.n_buckets_probed += 1
                if not len(ids):
                    continue
                ctx.n_candidates += len(ids)
                dists = self._exact.distances(query, ids)
                for item_id, dist in zip(ids, dists):
                    best.append((float(dist), int(item_id)))
                best.sort()
                del best[k:]
                if len(best) == k:
                    kth_distance = best[-1][0]
                if ctx.n_candidates >= max_candidates:
                    break
        # Retrieval and evaluation interleave under exact pruning, so
        # the whole loop counts as retrieval (the stage that stopped).
        ctx.total_seconds = root.duration
        ctx.retrieval_seconds = ctx.total_seconds
        obs.observe_query("hash", ctx, root=root)

        ids = np.asarray([item for _, item in best], dtype=np.int64)
        dists = np.asarray([dist for dist, _ in best], dtype=np.float64)
        return SearchResult(
            ids,
            dists,
            ctx.n_candidates,
            ctx.n_buckets_probed,
            extras={"stopped_early": bool(best), "stats": ctx},
        )

    def search_range(self, query: np.ndarray, radius: float) -> SearchResult:
        """All items within ``radius`` of the query — *exactly*.

        Section 4.1's early-stop criterion for distance-threshold
        queries: probing stops once every unprobed bucket satisfies
        ``µ·dist(q, b) > radius``; by Theorem 2 none of their items can
        lie within the radius.  Same preconditions as
        :meth:`search_early_stop`.
        """
        if radius < 0:
            raise ValueError("radius must be non-negative")
        prober, hasher, mu = self._early_stop_setup()
        query = validate_query(query, self._dim)
        signature, costs = hasher.probe_info(query)
        table = self._tables[0]

        ctx = ExecutionContext()
        hits: list[tuple[float, int]] = []
        with obs.span("query") as root:
            for bucket, qd in prober.probe_scored(table, signature, costs):
                if mu * qd > radius:
                    ctx.early_stop_triggered = True
                    break
                ids = table.get(bucket)
                ctx.n_buckets_probed += 1
                if not len(ids):
                    continue
                ctx.n_candidates += len(ids)
                dists = self._exact.distances(query, ids)
                hits.extend(
                    (float(d), int(i))
                    for i, d in zip(ids, dists)
                    if d <= radius
                )
        ctx.total_seconds = root.duration
        ctx.retrieval_seconds = ctx.total_seconds
        obs.observe_query("hash", ctx, root=root)
        hits.sort()
        ids = np.asarray([item for _, item in hits], dtype=np.int64)
        dists = np.asarray([dist for dist, _ in hits], dtype=np.float64)
        return SearchResult(
            ids, dists, ctx.n_candidates, ctx.n_buckets_probed,
            extras={"stats": ctx},
        )

    def _early_stop_setup(self) -> tuple[GQR, ProjectionHasher, float]:
        """Shared preconditions of the Theorem 2 search modes."""
        if len(self._tables) != 1:
            raise ValueError("early stop is defined for a single table")
        if self._metric != "euclidean":
            raise ValueError("the Theorem 2 bound is Euclidean-only")
        hasher = self._hashers[0]
        if not isinstance(hasher, ProjectionHasher):
            raise TypeError("early stop needs a hasher with a hashing matrix")
        if not isinstance(self._prober, GQR):
            raise TypeError("early stop needs a GQR prober")
        return self._prober, hasher, theorem2_mu(hasher.hashing_matrix)


class MIHSearchIndex:
    """Multi-Index Hashing as a querying method over L2H codes."""

    def __init__(
        self,
        hasher: BinaryHasher,
        data: np.ndarray,
        num_blocks: int = 2,
        metric: str = "euclidean",
        cache: QueryResultCache | None = None,
    ) -> None:
        self._data = np.asarray(data, dtype=np.float64)
        if not hasher.is_fitted:
            hasher.fit(self._data)
        self._hasher = hasher
        self._mih = MultiIndexHashing(hasher.encode(self._data), num_blocks)
        self._metric = metric
        self._dim = self._data.shape[1]
        self._evaluator = ExactEvaluator(self._data, metric)
        self._engine = QueryEngine(self._evaluator, name="mih", cache=cache)
        self._engine.rerankers["exact"] = self._evaluator

    @property
    def num_items(self) -> int:
        return len(self._data)

    @property
    def engine(self) -> QueryEngine:
        return self._engine

    def candidate_stream(self, query: np.ndarray) -> Iterator[np.ndarray]:
        query = validate_query(query, self._dim)
        signature, _ = self._hasher.probe_info(query)
        for _, ids in self._mih.probe_increasing(signature):
            if len(ids):
                yield ids

    def search(
        self,
        query: np.ndarray,
        k: int,
        n_candidates: int,
        rerank: RerankSpec | None = None,
    ) -> SearchResult:
        query = validate_query(query, self._dim)
        plan = QueryPlan(
            k=k, n_candidates=n_candidates, metric=self._metric, rerank=rerank
        )
        return self._engine.execute(query, plan, self.candidate_stream(query))


class IMISearchIndex:
    """OPQ/PQ + inverted multi-index (the VQ comparator of Section 6.5).

    Parameters
    ----------
    quantizer:
        A fitted 2-subspace (O)PQ defining the IMI grid.
    data:
        The ``(n, d)`` indexed items.
    rerank_quantizer:
        Optional *fine* :class:`~repro.quantization.pq.ProductQuantizer`
        (typically many subspaces).  When given, candidates are scored
        with asymmetric distance computation (ADC) over their compressed
        codes instead of raw vectors — the memory-saving mode real VQ
        systems run in; results become approximate.
    """

    def __init__(
        self,
        quantizer: ProductQuantizer | OptimizedProductQuantizer,
        data: np.ndarray,
        metric: str = "euclidean",
        rerank_quantizer: ProductQuantizer | None = None,
        cache: QueryResultCache | None = None,
    ) -> None:
        self._data = np.asarray(data, dtype=np.float64)
        self._imi = InvertedMultiIndex(quantizer, self._data)
        self._metric = metric
        self._fine = rerank_quantizer
        self._dim = self._data.shape[1]
        evaluator: Evaluator
        exact = ExactEvaluator(self._data, metric)
        if rerank_quantizer is not None:
            if not rerank_quantizer.codebooks:
                rerank_quantizer.fit(self._data)
            self._fine_codes = rerank_quantizer.encode(self._data)
            evaluator = ADCEvaluator(rerank_quantizer, self._fine_codes)
        else:
            evaluator = exact
        self._engine = QueryEngine(evaluator, name="imi", cache=cache)
        self._engine.rerankers["exact"] = exact
        if rerank_quantizer is not None:
            self._engine.rerankers["adc"] = evaluator

    @property
    def num_items(self) -> int:
        return len(self._data)

    @property
    def engine(self) -> QueryEngine:
        return self._engine

    def candidate_stream(self, query: np.ndarray) -> Iterator[np.ndarray]:
        yield from self._imi.probe(validate_query(query, self._dim))

    def search(
        self,
        query: np.ndarray,
        k: int,
        n_candidates: int,
        rerank: RerankSpec | None = None,
    ) -> SearchResult:
        query = validate_query(query, self._dim)
        plan = QueryPlan(
            k=k, n_candidates=n_candidates, metric=self._metric, rerank=rerank
        )
        return self._engine.execute(query, plan, self.candidate_stream(query))
