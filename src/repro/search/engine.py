"""Unified query-execution engine: a plan-driven stage pipeline.

Section 2.2 of the paper frames *every* querying method — HR, GHR, QR,
GQR, MIH, IMI — as one two-step loop: retrieval picks buckets and
gathers candidate ids, evaluation re-ranks the candidates exactly.
This module is that loop generalised into a typed stage pipeline
(:mod:`repro.search.stages`)::

    Retrieve → DedupBudget → Evaluate → [Rerank] → [Fuse] → Truncate

extracted once so each index class is a thin adapter instead of a
private re-implementation:

* :class:`QueryPlan` — what to do: ``k``, stopping criteria
  (candidate / bucket / time budgets), metric, multi-table strategy,
  and the optional rerank/fusion stage specs.  ``stage_list()`` is the
  plan's declarative serialisation — the stages it executes, in order,
  with every stage's parameters — which is also what cache keys hash.
* :class:`ExecutionContext` — what happened: buckets probed, candidates
  gathered, early-stop trigger, per-stage wall time
  (``stage_seconds``) and per-stage facts (``stage_stats``).  Attached
  to every :class:`~repro.search.results.SearchResult` as
  ``extras["stats"]``.
* :class:`CandidatePipeline` — budget-aware stream draining and the
  shared exact top-``k`` selection (ties broken by id everywhere).
* :class:`QueryEngine` — builds the pipeline a plan describes and runs
  it over a candidate stream, producing an instrumented
  ``SearchResult``.  Engines resolve rerank modes from
  :attr:`QueryEngine.rerankers` and fusion partners from
  :attr:`QueryEngine.fusion_partner`.

Evaluators encapsulate scoring: exact distances over raw vectors
(:class:`ExactEvaluator`), asymmetric distance over PQ codes
(:class:`ADCEvaluator`), or code-based estimates for vector-free
deployments (:class:`CodeEvaluator`).  The same evaluator contract
powers the evaluation *and* rerank stages.
"""

from __future__ import annotations

import heapq
import threading
from collections.abc import Callable, Iterable, Iterator
from dataclasses import dataclass, field, replace
from typing import Protocol

import numpy as np

from repro import obs
from repro.index.codes import (
    hamming_distance,
    packed_qd_distances,
    qd_cost_tables,
)
from repro.index.distance import METRICS, pairwise_distances
from repro.search.cache import QueryResultCache, cache_token
from repro.search.parallel import ParallelBatchExecutor
from repro.search.results import SearchResult
from repro.search.stages import (
    FuseStage,
    FusionPartner,
    FusionSpec,
    PipelineState,
    RerankSpec,
    RerankStage,
    Stage,
    TruncateStage,
    build_pipeline,
    drain_stream,
)

__all__ = [
    "ADCEvaluator",
    "BucketTable",
    "CandidatePipeline",
    "CodeEvaluator",
    "DistanceTableQuantizer",
    "Evaluator",
    "ExactEvaluator",
    "ExecutionContext",
    "ProbeInfoHasher",
    "QueryEngine",
    "QueryPlan",
    "qd_merged_scored_stream",
    "round_robin_stream",
    "validate_query",
    "validate_query_batch",
]

_EMPTY_IDS = np.empty(0, dtype=np.int64)
_EMPTY_DISTS = np.empty(0, dtype=np.float64)


# -- query validation -------------------------------------------------

def validate_query(query: np.ndarray, dim: int | None = None) -> np.ndarray:
    """Coerce one query to a 1-D float64 vector, or raise uniformly.

    Every index validates through this function, so a malformed query
    produces the same ``ValueError`` everywhere instead of (depending on
    the index) a broadcasting error deep inside numpy.
    """
    try:
        arr = np.asarray(query, dtype=np.float64)
    except (TypeError, ValueError):
        raise ValueError(
            f"query must be a numeric vector; got {type(query).__name__} "
            "that cannot be cast to float64"
        ) from None
    if arr.ndim != 1:
        raise ValueError(
            "query must be a 1-D vector"
            + (f" of dimension {dim}" if dim is not None else "")
            + f"; got shape {arr.shape}"
        )
    if dim is not None and arr.shape[0] != dim:
        raise ValueError(
            f"query must be a 1-D vector of dimension {dim}; "
            f"got shape {arr.shape}"
        )
    if not np.isfinite(arr).all():
        raise ValueError("query contains non-finite values (nan or inf)")
    return arr


def validate_query_batch(
    queries: np.ndarray, dim: int | None = None
) -> np.ndarray:
    """Coerce a query batch to ``(B, dim)`` float64, or raise uniformly."""
    try:
        arr = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    except (TypeError, ValueError):
        raise ValueError(
            "queries must be a numeric array; got "
            f"{type(queries).__name__} that cannot be cast to float64"
        ) from None
    if arr.ndim != 2:
        raise ValueError(
            f"queries must be a (batch, dim) array; got shape {arr.shape}"
        )
    if dim is not None and arr.shape[1] != dim:
        raise ValueError(
            f"queries must be a (batch, {dim}) array; got shape {arr.shape}"
        )
    if not np.isfinite(arr).all():
        raise ValueError("queries contain non-finite values (nan or inf)")
    return arr


# -- plan and context -------------------------------------------------

@dataclass(frozen=True)
class QueryPlan:
    """Everything the engine needs to know before touching a query.

    At least one stopping criterion (``n_candidates``, ``max_buckets``,
    ``time_budget``) must be set — Algorithm 1's remark that "other
    stopping criteria can also be used"; retrieval stops at whichever
    bound is hit first.

    ``rerank`` and ``fusion`` switch on the optional pipeline stages:
    a :class:`~repro.search.stages.RerankSpec` re-scores the
    evaluation stage's surviving pool with a second scorer the engine
    resolves by mode, and a :class:`~repro.search.stages.FusionSpec`
    linearly fuses the ranked list with the engine's attached fusion
    partner.  A plan is pure data — the same plan runs against any
    engine that can resolve its stages.
    """

    k: int
    n_candidates: int | None = None
    max_buckets: int | None = None
    time_budget: float | None = None
    metric: str = "euclidean"
    multi_table_strategy: str = "round_robin"
    rerank: RerankSpec | None = None
    fusion: FusionSpec | None = None

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be positive, got {self.k}")
        if (
            self.n_candidates is None
            and self.max_buckets is None
            and self.time_budget is None
        ):
            raise ValueError(
                "give at least one stopping criterion: n_candidates, "
                "max_buckets or time_budget"
            )
        if self.metric not in METRICS:
            raise KeyError(
                f"unknown metric {self.metric!r}; options: {sorted(METRICS)}"
            )
        if self.multi_table_strategy not in ("round_robin", "qd_merge"):
            raise ValueError(
                "multi_table_strategy must be 'round_robin' or 'qd_merge'"
            )
        if self.rerank is not None and not isinstance(self.rerank, RerankSpec):
            raise TypeError(
                f"rerank must be a RerankSpec, got {type(self.rerank).__name__}"
            )
        if self.fusion is not None and not isinstance(
            self.fusion, FusionSpec
        ):
            raise TypeError(
                f"fusion must be a FusionSpec, got {type(self.fusion).__name__}"
            )

    def evaluate_keep(self) -> int | None:
        """How many ranked survivors the evaluation stage keeps.

        ``k`` when evaluation is the last scoring stage (the classic
        path); the rerank pool when a rerank follows (``None`` = keep
        the whole scored candidate set); the fusion pool when only a
        fusion follows.
        """
        if self.rerank is not None:
            return self.rerank.pool
        if self.fusion is not None:
            return self.fusion.pool if self.fusion.pool is not None else self.k
        return self.k

    def stage_list(self) -> tuple[tuple[object, ...], ...]:
        """The declarative stage serialisation of this plan.

        One tuple per pipeline stage, in execution order, each carrying
        the stage name and every parameter that shapes its output.
        This is the canonical plan identity: cache keys hash it, so two
        plans collide only if they execute the same stages with the
        same parameters.
        """
        stages: list[tuple[object, ...]] = [
            ("retrieve", self.multi_table_strategy),
            (
                "dedup_budget",
                self.n_candidates,
                self.max_buckets,
                self.time_budget,
            ),
            ("evaluate", self.metric, self.evaluate_keep()),
        ]
        if self.rerank is not None:
            stages.append(("rerank", self.rerank.mode, self.rerank.pool))
        if self.fusion is not None:
            stages.append(("fuse", self.fusion.weight, self.fusion.pool))
        stages.append(("truncate", self.k))
        return tuple(stages)

    def stage_names(self) -> tuple[str, ...]:
        """The names of the stages this plan executes, in order."""
        return tuple(str(entry[0]) for entry in self.stage_list())

    def downgraded(self, level: int, *, floor: int = 16) -> QueryPlan:
        """A cheaper variant of this plan, ``level`` steps down the ladder.

        The serving front door's graduated load shedding
        (:mod:`repro.serving`) degrades admitted queries to cheaper
        plans before it ever rejects; this method is the ladder.  Level
        ``0`` is the plan itself.  Each level halves the candidate and
        bucket budgets (never below ``max(floor, k)`` candidates or one
        bucket), and from level ``2`` the optional rerank and fusion
        stages are dropped entirely — the order mirrors the stages'
        cost: budget first, extra scoring passes second.

        The result is an ordinary :class:`QueryPlan`: running it
        directly is bit-identical to being degraded to it, which is the
        property the shedding tests pin.
        """
        if level < 0:
            raise ValueError(f"downgrade level must be >= 0, got {level}")
        if level == 0:
            return self
        shrink = 2 ** level
        n_candidates = self.n_candidates
        if n_candidates is not None:
            n_candidates = max(max(floor, self.k), n_candidates // shrink)
        max_buckets = self.max_buckets
        if max_buckets is not None:
            max_buckets = max(1, max_buckets // shrink)
        time_budget = self.time_budget
        if time_budget is not None:
            time_budget = time_budget / shrink
        return replace(
            self,
            n_candidates=n_candidates,
            max_buckets=max_buckets,
            time_budget=time_budget,
            rerank=None if level >= 2 else self.rerank,
            fusion=None if level >= 2 else self.fusion,
        )

    def budget_fraction(self, other: QueryPlan) -> float:
        """``other``'s candidate budget as a fraction of this plan's.

        The serving layer's coverage vocabulary for degraded responses
        (mirroring the distributed layer's reachable-subset coverage):
        1.0 when the budgets match (or neither plan bounds candidates),
        smaller when ``other`` is a downgraded variant.
        """
        if self.n_candidates is None or other.n_candidates is None:
            return 1.0
        if self.n_candidates <= 0:
            return 1.0
        return min(1.0, other.n_candidates / self.n_candidates)


@dataclass
class ExecutionContext:
    """Per-query instrumentation filled in by the engine.

    Attributes
    ----------
    n_buckets_probed:
        Non-empty buckets (or cells / rings) fetched during retrieval.
    n_candidates:
        Candidate ids gathered before evaluation.
    early_stop_triggered:
        Whether a Theorem 2 bound terminated retrieval early.
    retrieval_seconds / evaluation_seconds / total_seconds:
        Wall time of the coarse stages as measured by the engine's
        spans (:mod:`repro.obs.spans`).  ``retrieval_seconds`` covers
        the retrieve + dedup_budget stages together.
    stage_seconds:
        Wall time of each executed pipeline stage, keyed by stage name
        (``"retrieve"``, ``"dedup_budget"``, ``"evaluate"``,
        ``"rerank"``, ``"fuse"``, ``"truncate"``) — recorded by
        :meth:`~repro.search.stages.Stage.execute`.
    stage_stats:
        Per-stage facts beyond timing (rerank mode and pool size,
        fusion weight and list sizes), keyed by stage name.
    bucket_sizes:
        Per-probed-bucket candidate counts, recorded only when the
        trace sampler selected this query (``None`` otherwise); part of
        the sampled-trace payload, not of :meth:`as_dict`.
    """

    n_buckets_probed: int = 0
    n_candidates: int = 0
    early_stop_triggered: bool = False
    retrieval_seconds: float = 0.0
    evaluation_seconds: float = 0.0
    total_seconds: float = 0.0
    stage_seconds: dict[str, float] = field(default_factory=dict)
    stage_stats: dict[str, dict] = field(default_factory=dict, repr=False)
    bucket_sizes: list[int] | None = field(default=None, repr=False)

    def as_dict(self) -> dict:
        """The stats as a plain dict (JSON-friendly)."""
        return {
            "n_buckets_probed": int(self.n_buckets_probed),
            "n_candidates": int(self.n_candidates),
            "early_stop_triggered": bool(self.early_stop_triggered),
            "retrieval_seconds": float(self.retrieval_seconds),
            "evaluation_seconds": float(self.evaluation_seconds),
            "total_seconds": float(self.total_seconds),
            "stages": {
                name: float(seconds)
                for name, seconds in self.stage_seconds.items()
            },
        }


# -- candidate pipeline -----------------------------------------------

class CandidatePipeline:
    """Budget-aware stream draining and the shared top-``k`` selection."""

    @staticmethod
    def drain(
        stream: Iterable[np.ndarray],
        plan: QueryPlan,
        ctx: ExecutionContext,
    ) -> np.ndarray:
        """Collect candidate ids until a stopping criterion fires.

        Delegates to :func:`repro.search.stages.drain_stream` — the
        dedup_budget stage's implementation — kept here as the stable
        entry point batch paths and tests call directly.  See that
        function for the dedup and budget-accounting contract.
        """
        return drain_stream(stream, plan, ctx)

    @staticmethod
    def top_k(
        candidate_ids: np.ndarray, scores: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Keep the ``k`` best-scored candidates, ties broken by id.

        The selection rule shared by every evaluator: ``argpartition``
        to the cut, then a ``(score, id)`` lexsort of the survivors.
        """
        if not len(candidate_ids):
            return _EMPTY_IDS, _EMPTY_DISTS
        keep = min(k, len(candidate_ids))
        if keep < len(candidate_ids):
            part = np.argpartition(scores, keep - 1)[:keep]
        else:
            part = np.arange(len(candidate_ids))
        order = np.lexsort((candidate_ids[part], scores[part]))
        chosen = part[order]
        return candidate_ids[chosen], scores[chosen]


# -- evaluator contracts ----------------------------------------------

class Evaluator(Protocol):
    """The evaluation stage's scoring rule, as the engine sees it.

    ``evaluate`` re-ranks ``candidates`` for ``query`` and returns the
    top-``k`` ``(ids, scores)`` pair, both aligned and ascending by
    score with ties broken by id.
    """

    def evaluate(
        self, query: np.ndarray, candidates: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray]: ...


class DistanceTableQuantizer(Protocol):
    """The slice of a product quantizer :class:`ADCEvaluator` needs."""

    def distance_tables(self, query: np.ndarray) -> list[np.ndarray]: ...


class ProbeInfoHasher(Protocol):
    """The slice of a binary hasher :class:`CodeEvaluator` needs."""

    def probe_info(self, query: np.ndarray) -> tuple[int, np.ndarray]: ...


class BucketTable(Protocol):
    """Bucket lookup surface the batched fast path drains."""

    def get(self, signature: int) -> np.ndarray: ...


# -- evaluators -------------------------------------------------------

class ExactEvaluator:
    """Exact re-rank against raw vectors under a registered metric.

    ``data`` may be the ``(n, d)`` array itself or a zero-argument
    callable returning it — the latter lets mutable indexes (whose item
    storage is reallocated as it grows) stay wired to live storage.
    """

    def __init__(
        self,
        data: np.ndarray | Callable[[], np.ndarray],
        metric: str = "euclidean",
    ) -> None:
        if metric not in METRICS:
            raise KeyError(
                f"unknown metric {metric!r}; options: {sorted(METRICS)}"
            )
        self._data = data
        self.metric = metric

    def _vectors(self) -> np.ndarray:
        return self._data() if callable(self._data) else self._data

    def distances(
        self, query: np.ndarray, candidates: np.ndarray
    ) -> np.ndarray:
        """Exact distances to ``candidates``, aligned — no selection.

        The sanctioned interface for search paths that need raw
        per-candidate distances (the Theorem 2 early-stop loop, range
        search) rather than a top-``k``: exact scoring stays inside the
        engine's evaluator instead of leaking into each index class.
        """
        if not len(candidates):
            return _EMPTY_DISTS
        return pairwise_distances(
            query[np.newaxis, :], self._vectors()[candidates], self.metric
        )[0]

    def evaluate(
        self, query: np.ndarray, candidates: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray]:
        if not len(candidates):
            return _EMPTY_IDS, _EMPTY_DISTS
        if self.metric in _RAGGED_METRICS:
            # Same arithmetic as the batched block path, so per-query
            # and batched searches return bit-identical distances.
            dists = _ragged_distances(
                query[np.newaxis, :],
                self._vectors(),
                candidates,
                np.array([len(candidates)], dtype=np.int64),
                self.metric,
            )
        else:
            dists = pairwise_distances(
                query[np.newaxis, :], self._vectors()[candidates], self.metric
            )[0]
        return CandidatePipeline.top_k(candidates, dists, k)


class ADCEvaluator:
    """Asymmetric distance computation over fine PQ codes.

    Scores candidates from their compressed codes via the query's
    per-subspace distance tables — the memory-saving mode real VQ
    systems run in; returned distances are approximate.
    """

    def __init__(
        self, fine_quantizer: DistanceTableQuantizer, fine_codes: np.ndarray
    ) -> None:
        self._fine = fine_quantizer
        self._codes = fine_codes

    def evaluate(
        self, query: np.ndarray, candidates: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray]:
        if not len(candidates):
            return _EMPTY_IDS, _EMPTY_DISTS
        tables = self._fine.distance_tables(query)
        codes = self._codes[candidates]
        approx = np.zeros(len(candidates), dtype=np.float64)
        for subspace, table in enumerate(tables):
            approx += table[codes[:, subspace]]
        ids, scores = CandidatePipeline.top_k(candidates, approx, k)
        return ids, np.sqrt(np.maximum(scores, 0.0))


class CodeEvaluator:
    """Code-only re-ranking for deployments without raw vectors.

    ``asymmetric`` scores a candidate by the paper's quantization
    distance evaluated at its long code (a scaled lower bound on true
    distance, Theorem 2); ``symmetric`` uses Hamming distance between
    long codes.  The returned "distances" are estimator values.

    Both modes run as packed-block kernels over the int64 signatures
    (:mod:`repro.index.codes`): symmetric is one XOR +
    ``np.bitwise_count``, asymmetric builds the query's per-byte QD
    lookup tables once and scores every candidate with byte gathers —
    no per-candidate bit unpacking, so worker shards stay ufunc-bound.
    """

    def __init__(
        self,
        rerank_hasher: ProbeInfoHasher,
        long_signatures: np.ndarray,
        mode: str,
    ) -> None:
        if mode not in ("asymmetric", "symmetric"):
            raise ValueError("rerank must be 'asymmetric' or 'symmetric'")
        self._hasher = rerank_hasher
        self._signatures = long_signatures
        self.mode = mode

    def evaluate(
        self, query: np.ndarray, candidates: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray]:
        if not len(candidates):
            return _EMPTY_IDS, _EMPTY_DISTS
        long_sig, long_costs = self._hasher.probe_info(query)
        candidate_codes = self._signatures[candidates]
        if self.mode == "asymmetric":
            estimates = packed_qd_distances(
                candidate_codes, qd_cost_tables(long_sig, long_costs)
            )
        else:
            estimates = hamming_distance(
                candidate_codes, np.int64(long_sig)
            ).astype(np.float64)
        return CandidatePipeline.top_k(candidates, estimates, k)


_RAGGED_METRICS = ("euclidean", "cosine", "angular")


def _ragged_distances(
    queries: np.ndarray,
    data: np.ndarray,
    stacked_ids: np.ndarray,
    counts: np.ndarray,
    metric: str,
    row_block: int = 4096,
) -> np.ndarray:
    """Each query's distances to its own candidate segment, in one pass.

    ``stacked_ids`` is the row-stacked concatenation of every query's
    candidate ids into ``data`` and ``counts[i]`` the length of query
    ``i``'s segment.  A few einsum calls score the whole ragged block —
    no ``B × |union|`` distance matrix (which degenerates into a full
    linear scan when candidate sets barely overlap) and no per-query
    BLAS calls.  The euclidean path computes ``‖q − x‖`` from the
    difference vector directly, avoiding the catastrophic cancellation
    of the ``‖q‖² − 2q·x + ‖x‖²`` expansion, so self-distances come out
    exactly zero.

    The block is processed in cache-sized chunks of whole segments
    (~``row_block`` rows): one giant pass materialises several
    ``(total, d)`` temporaries, which on a memory-bound machine costs
    more than the arithmetic itself.  Chunking never splits a segment
    and every op is row-wise, so results are bit-identical whatever the
    chunk size — the per-query path reuses this function with a single
    segment and gets the exact same numbers.
    """
    if metric not in _RAGGED_METRICS:
        raise KeyError(f"unknown metric {metric!r}")
    bounds = np.concatenate(([0], np.cumsum(counts, dtype=np.int64)))
    out = np.empty(int(bounds[-1]), dtype=np.float64)
    euclidean = metric == "euclidean"
    n_segments = len(counts)
    lo = 0
    while lo < n_segments:
        hi = lo + 1
        while hi < n_segments and bounds[hi + 1] - bounds[lo] <= row_block:
            hi += 1
        seg = slice(int(bounds[lo]), int(bounds[hi]))
        vectors = data[stacked_ids[seg]]
        if euclidean:
            # Broadcast-subtract each query over its own rows instead of
            # materialising a repeated-queries block: per row the
            # arithmetic is identical, but the big temporary (and its
            # memory traffic) disappears.
            for q in range(lo, hi):
                vectors[
                    int(bounds[q] - bounds[lo]):int(bounds[q + 1] - bounds[lo])
                ] -= queries[q]
            out[seg] = np.einsum("ij,ij->i", vectors, vectors)
        else:
            expanded = np.repeat(queries[lo:hi], counts[lo:hi], axis=0)
            query_norms = np.linalg.norm(expanded, axis=1)
            vector_norms = np.linalg.norm(vectors, axis=1)
            query_norms[query_norms == 0] = 1.0
            vector_norms[vector_norms == 0] = 1.0
            sims = np.einsum("ij,ij->i", expanded, vectors)
            sims /= query_norms * vector_norms
            out[seg] = sims
        lo = hi
    if euclidean:
        return np.sqrt(out, out=out)
    np.clip(out, -1.0, 1.0, out=out)
    if metric == "cosine":
        return np.subtract(1.0, out, out=out)
    return np.arccos(out, out=out)


def _probe_prefix(
    scores: np.ndarray,
    signatures: np.ndarray,
    sizes: np.ndarray,
    budget: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Probe orders, cumulative candidate counts and stop columns.

    Returns only the shortest column prefix that satisfies every
    query's candidate budget: sorting and cumulating all ``nb`` bucket
    columns is wasted work when the budget is met after a few dozen
    buckets, so this orders a prefix of ``W`` columns (growing ``W``
    until every row reaches the budget or runs out of buckets).
    """
    n_queries, n_buckets = scores.shape
    mean_size = max(float(sizes.mean()), 1.0) if len(sizes) else 1.0
    width = int(min(n_buckets, max(16, 4 * budget / mean_size + 1)))
    while True:
        if width >= n_buckets:
            order = _probe_order(scores, signatures)
        else:
            order = _probe_order_prefix(scores, signatures, width)
        cumulative = np.cumsum(sizes[order], axis=1)
        if width >= n_buckets or cumulative[:, -1].min() >= budget:
            stops = np.minimum(
                (cumulative < budget).sum(axis=1), order.shape[1] - 1
            )
            return order, cumulative, stops
        width = min(n_buckets, width * 4)


def _probe_order_prefix(
    scores: np.ndarray, signatures: np.ndarray, width: int
) -> np.ndarray:
    """First ``width`` columns of each row's ``(score, signature)`` order.

    An argpartition narrows each row to its ``width`` best buckets
    before the (much smaller) sort.  Integer scores use the same
    collision-free composite key as :func:`_probe_order`; float rows
    whose partition cut lands inside a run of tied scores — where
    argpartition admits an arbitrary subset of the tie — are re-derived
    from a full stable sort.
    """
    if scores.dtype.kind in "iu":
        span = int(signatures[-1]) + 1 if len(signatures) else 1
        magnitude = max(
            abs(int(scores.max(initial=0))), abs(int(scores.min(initial=0)))
        )
        if magnitude <= (np.iinfo(np.int64).max - span) // max(span, 1):
            keys = scores.astype(np.int64) * span + signatures
            part = np.argpartition(keys, width - 1, axis=-1)[:, :width]
            inner = np.argsort(
                np.take_along_axis(keys, part, axis=-1), axis=-1
            )
            return np.take_along_axis(part, inner, axis=-1)
        return np.argsort(scores, axis=-1, kind="stable")[:, :width]
    part = np.argpartition(scores, width - 1, axis=-1)[:, :width]
    part_scores = np.take_along_axis(scores, part, axis=-1)
    # Column index doubles as the signature rank, signatures ascending.
    inner = np.lexsort((part, part_scores), axis=-1)
    order = np.take_along_axis(part, inner, axis=-1)
    ranked = np.take_along_axis(part_scores, inner, axis=-1)
    boundary = ranked[:, -1][:, np.newaxis]
    tied_at_cut = np.nonzero(
        (scores == boundary).sum(axis=-1) != (ranked == boundary).sum(axis=-1)
    )[0]
    for row in tied_at_cut:
        order[row] = np.argsort(scores[row], kind="stable")[:width]
    return order


def _probe_order(scores: np.ndarray, signatures: np.ndarray) -> np.ndarray:
    """Per-row probe order: ascending ``(score, signature)``, vectorised.

    ``signatures`` arrive ascending, so a stable sort on score alone
    yields the probers' lexicographic tie-break.  Stable sorts are
    several times slower than quicksort here, so: integer scores get a
    collision-free composite ``score·span + signature`` key (unique →
    any sort kind agrees with the stable order); float scores get a
    quicksort plus a stable re-sort of only the rows that contain
    duplicate scores — rare for continuous quantization distances.
    """
    if scores.dtype.kind in "iu":
        span = int(signatures[-1]) + 1 if len(signatures) else 1
        magnitude = max(
            abs(int(scores.max(initial=0))), abs(int(scores.min(initial=0)))
        )
        if magnitude <= (np.iinfo(np.int64).max - span) // max(span, 1):
            keys = scores.astype(np.int64) * span + signatures
            return np.argsort(keys, axis=-1)
        return np.argsort(scores, axis=-1, kind="stable")
    order = np.argsort(scores, axis=-1)
    ranked = np.take_along_axis(scores, order, axis=-1)
    tied_rows = np.nonzero((np.diff(ranked, axis=-1) == 0.0).any(axis=-1))[0]
    for row in tied_rows:
        order[row] = np.argsort(scores[row], kind="stable")
    return order


def _block_top_k(
    all_candidates: np.ndarray,
    all_distances: np.ndarray,
    counts: np.ndarray,
    k: int,
) -> list[tuple[np.ndarray, np.ndarray]]:
    """:meth:`CandidatePipeline.top_k` over every segment at once.

    Pads the ragged block to a dense ``(B, max_count)`` matrix (∞
    distance / maximal id sentinels sort last) so one argpartition and
    one two-key lexsort rank the whole batch.
    """
    n_queries = len(counts)
    width = int(counts.max()) if n_queries else 0
    if width == 0:
        return [(_EMPTY_IDS, _EMPTY_DISTS)] * n_queries
    row_mask = np.arange(width)[np.newaxis, :] < counts[:, np.newaxis]
    dist_pad = np.full((n_queries, width), np.inf)
    dist_pad[row_mask] = all_distances
    ids_pad = np.full((n_queries, width), np.iinfo(np.int64).max, dtype=np.int64)
    ids_pad[row_mask] = all_candidates
    kth = min(k, width)
    if kth < width:
        part = np.argpartition(dist_pad, kth - 1, axis=1)[:, :kth]
        part_dists = np.take_along_axis(dist_pad, part, axis=1)
        part_ids = np.take_along_axis(ids_pad, part, axis=1)
    else:
        part_dists, part_ids = dist_pad, ids_pad
    suborder = np.lexsort((part_ids, part_dists), axis=1)
    part_dists = np.take_along_axis(part_dists, suborder, axis=1)
    part_ids = np.take_along_axis(part_ids, suborder, axis=1)
    return [
        (row_ids[:min(k, int(count))].copy(),
         row_dists[:min(k, int(count))].copy())
        for row_ids, row_dists, count in zip(part_ids, part_dists, counts)
    ]


def _resolve_eval_k(plan: QueryPlan) -> int:
    """``plan.evaluate_keep()`` as a concrete cut for the batch kernels.

    The batched top-k kernels take an integer, so "keep everything"
    (``None``) becomes a cut no candidate set can reach.
    """
    keep = plan.evaluate_keep()
    return int(np.iinfo(np.int64).max) if keep is None else keep


def _run_post_stages(
    post: list[Stage],
    query: np.ndarray,
    ids: np.ndarray,
    scores: np.ndarray,
    ctx: ExecutionContext,
) -> tuple[np.ndarray, np.ndarray]:
    """Apply the rerank/fuse/truncate tail to one batched result.

    The batch paths amortise retrieval and evaluation across the block,
    then run each query's remaining stages here — the stages are
    per-row independent, so batched and per-query execution stay
    bit-identical.
    """
    state = PipelineState(query=query, ids=ids, scores=scores)
    for stage in post:
        stage.execute(ctx, state)
    return state.ids, state.scores


def _post_seconds(ctx: ExecutionContext) -> float:
    """Wall time the post-evaluation stages added to one context."""
    return (
        ctx.stage_seconds.get("rerank", 0.0)
        + ctx.stage_seconds.get("fuse", 0.0)
        + ctx.stage_seconds.get("truncate", 0.0)
    )


# -- multi-table stream composition -----------------------------------


# -- multi-table stream composition -----------------------------------

def round_robin_stream(
    streams: list[Iterator[int]],
    tables: list,
    num_items: int,
) -> Iterator[np.ndarray]:
    """One bucket from each table's probe order in turn, deduplicated.

    The paper's multi-hash-table strategy (Section 6.3.5): strict
    alternation across tables; an item seen in an earlier table is
    suppressed when later tables yield it again.
    """
    seen = np.zeros(num_items, dtype=bool)
    active = list(zip(streams, tables))
    while active:
        still_active = []
        for stream, table in active:
            bucket = next(stream, None)
            if bucket is None:
                continue
            still_active.append((stream, table))
            ids = table.get(bucket)
            if len(ids):
                fresh = ids[~seen[ids]]
                if len(fresh):
                    seen[fresh] = True
                    yield fresh
        active = still_active


def qd_merged_scored_stream(
    scored_streams: list[Iterator[tuple[int, float]]],
    tables: list,
    num_items: int,
) -> Iterator[tuple[float, np.ndarray]]:
    """Heap-merge scored probe streams into one ascending-QD sequence.

    Yields ``(qd, fresh_ids)`` pairs globally sorted by quantization
    distance: each input stream is non-decreasing (Properties 1–2 /
    Theorem 2's ordering guarantee), so a k-way heap merge preserves the
    invariant across tables.  A bucket with small QD is a good bucket in
    *any* table, so the globally best bucket is probed next instead of
    strictly alternating tables.  Duplicates across tables are
    suppressed; empty buckets still advance the merge but yield nothing.
    """
    streams = [iter(s) for s in scored_streams]
    heap: list[tuple[float, int, int]] = []  # (qd, table_idx, bucket)
    for idx, stream in enumerate(streams):
        first = next(stream, None)
        if first is not None:
            bucket, qd = first
            heap.append((qd, idx, bucket))
    heapq.heapify(heap)
    seen = np.zeros(num_items, dtype=bool)
    while heap:
        qd, idx, bucket = heapq.heappop(heap)
        ids = tables[idx].get(bucket)
        if len(ids):
            fresh = ids[~seen[ids]]
            if len(fresh):
                seen[fresh] = True
                yield qd, fresh
        upcoming = next(streams[idx], None)
        if upcoming is not None:
            next_bucket, next_qd = upcoming
            heapq.heappush(heap, (next_qd, idx, next_bucket))


# -- the engine -------------------------------------------------------

class QueryEngine:
    """Execute :class:`QueryPlan` instances over candidate streams.

    One engine per index: it owns the evaluator (the evaluation stage's
    scoring rule) while each call supplies the plan and the retrieval
    stream, so all indexes share a single instrumented control flow.
    The engine turns each plan into its stage pipeline
    (:func:`~repro.search.stages.build_pipeline`) and runs the stages
    in order; optional stages resolve against engine-owned registries:

    * :attr:`rerankers` — rerank mode (``"exact"`` / ``"adc"``) →
      :class:`Evaluator`; index front-ends populate it from what they
      can score faithfully (raw vectors, fine PQ codes).
    * :attr:`fusion_partner` — the
      :class:`~repro.search.stages.FusionPartner` whose ranked lists
      fusion plans combine with; attach via the index's ``fuse_with``.

    ``name`` labels this engine's series in the metrics registry
    (``repro_queries_total{index="hash"}``, …) when telemetry is on.

    Serving-layer hooks (both optional, both off by default):

    * ``cache`` — a :class:`~repro.search.cache.QueryResultCache`;
      :meth:`execute` consults it before running a cacheable plan and
      stores the result after.  Keys include this engine's identity
      token and :attr:`generation`, which mutating indexes bump via
      :meth:`bump_generation` on every add/remove/append — entries from
      an older generation can never be returned again.
    * ``parallel`` — a
      :class:`~repro.search.parallel.ParallelBatchExecutor`; both batch
      entry points shard large batches across its worker pool (threads,
      or shared-memory processes for eligible ordered batches), with
      results bit-identical to serial execution.
    """

    def __init__(
        self,
        evaluator: Evaluator,
        name: str = "index",
        cache: QueryResultCache | None = None,
        parallel: ParallelBatchExecutor | None = None,
    ) -> None:
        self.evaluator = evaluator
        self.name = name
        self.cache = cache
        self.parallel = parallel
        self.generation = 0
        # Mutable indexes bump the generation from whatever thread runs
        # the mutation — including pool workers syncing a stream index
        # mid-fusion — and `+=` is not atomic under the GIL.  Reads
        # (cache keys) stay lock-free: a torn read just misses the
        # cache.
        self._generation_lock = threading.Lock()
        self.rerankers: dict[str, Evaluator] = {}
        self.fusion_partner: FusionPartner | None = None
        self._cache_token = cache_token(name)

    def identity(self) -> tuple[object, ...]:
        """This engine's cache-relevant identity: ``(token, generation)``.

        The token is process-unique per engine instance and the
        generation advances on every index mutation, so folding this
        tuple into another engine's cache keys (fusion partners do)
        makes those keys unreachable whenever this engine's answers
        could have changed.
        """
        return (self._cache_token, self.generation)

    def reranker_for(self, spec: RerankSpec) -> Evaluator:
        """The evaluator registered for ``spec.mode``, or a clear error."""
        try:
            return self.rerankers[spec.mode]
        except KeyError:
            raise ValueError(
                f"engine {self.name!r} has no {spec.mode!r} reranker; "
                f"available modes: {sorted(self.rerankers)}"
            ) from None

    def _resolve_stages(
        self, plan: QueryPlan
    ) -> tuple[Evaluator | None, FusionPartner | None]:
        """Resolve the plan's optional stages against this engine.

        Called before any cache lookup so a plan naming an unavailable
        rerank mode or fusing without a partner fails loudly up front
        instead of deep inside execution (or worse, after a stale hit).
        """
        reranker = (
            self.reranker_for(plan.rerank) if plan.rerank is not None else None
        )
        partner: FusionPartner | None = None
        if plan.fusion is not None:
            partner = self.fusion_partner
            if partner is None:
                raise ValueError(
                    f"plan requests fusion but engine {self.name!r} has no "
                    "fusion partner attached"
                )
        return reranker, partner

    def bump_generation(self) -> None:
        """Invalidate every cached result produced by this engine.

        Called by mutable indexes after any change to the indexed items;
        the generation number participates in every cache key, so prior
        entries become unreachable (and age out of the LRU) rather than
        ever being served stale.
        """
        with self._generation_lock:
            self.generation += 1

    def execute(
        self,
        query: np.ndarray,
        plan: QueryPlan,
        stream: Iterable[np.ndarray],
        extras: dict | None = None,
    ) -> SearchResult:
        """Run ``plan``'s stage pipeline over ``stream`` — one query.

        Returns a :class:`~repro.search.results.SearchResult` whose
        ``extras["stats"]`` carries the :class:`ExecutionContext` and
        ``extras["spans"]`` the root :class:`~repro.obs.spans.Span` of
        the query→stages tree.  With a :attr:`cache` attached and a
        cacheable plan, a hit returns the stored result without
        touching the stream; keys incorporate the plan's full stage
        list and — for fusion plans — the partner's identity.
        """
        reranker, partner = self._resolve_stages(plan)
        cache = self.cache
        if cache is None or not QueryResultCache.cacheable(plan):
            return self._execute_uncached(
                query, plan, stream, extras, reranker, partner
            )
        partner_identity = (
            partner.fusion_identity() if partner is not None else ()
        )
        key = cache.key_for(
            self._cache_token, self.generation, plan, query, partner_identity
        )
        hit = cache.lookup(key)
        if hit is not None:
            return hit
        result = self._execute_uncached(
            query, plan, stream, extras, reranker, partner
        )
        cache.store(key, result)
        return result

    def _execute_uncached(
        self,
        query: np.ndarray,
        plan: QueryPlan,
        stream: Iterable[np.ndarray],
        extras: dict | None = None,
        reranker: Evaluator | None = None,
        partner: FusionPartner | None = None,
    ) -> SearchResult:
        ctx = ExecutionContext()
        sampled = obs.should_sample()
        if sampled:
            ctx.bucket_sizes = []
        pipeline = build_pipeline(
            plan, self.evaluator, reranker=reranker, partner=partner
        )
        state = PipelineState(query=query, stream=stream)
        with obs.span("query") as root:
            for stage in pipeline:
                stage.execute(ctx, state)
        ctx.retrieval_seconds = ctx.stage_seconds.get(
            "retrieve", 0.0
        ) + ctx.stage_seconds.get("dedup_budget", 0.0)
        ctx.evaluation_seconds = ctx.stage_seconds.get("evaluate", 0.0)
        ctx.total_seconds = root.duration
        obs.observe_query(self.name, ctx, root=root, sampled=sampled)
        all_extras = {"stats": ctx, "spans": root}
        if extras:
            all_extras.update(extras)
        return SearchResult(
            state.ids,
            state.scores,
            ctx.n_candidates,
            ctx.n_buckets_probed,
            all_extras,
        )

    def execute_batch_streams(
        self,
        queries: np.ndarray,
        plan: QueryPlan,
        streams: list[Iterable[np.ndarray]],
    ) -> list[SearchResult]:
        """Batched execution over per-query candidate streams.

        Retrieval stays per-query (each stream's probe order is exactly
        the per-query path's), but evaluation is amortised across the
        whole block via :meth:`evaluate_block`.  With a
        :attr:`parallel` executor attached, large batches shard across
        its thread pool (each shard draining only its own streams),
        bit-identical to serial execution.
        """
        streams = list(streams)
        if self.parallel is not None and self.parallel.should_split(
            len(streams)
        ):
            return self.parallel.run_streams(self, queries, plan, streams)
        return self._execute_batch_streams_serial(queries, plan, streams)

    def _execute_batch_streams_serial(
        self,
        queries: np.ndarray,
        plan: QueryPlan,
        streams: list[Iterable[np.ndarray]],
    ) -> list[SearchResult]:
        reranker, partner = self._resolve_stages(plan)
        contexts = [ExecutionContext() for _ in streams]
        per_query: list[np.ndarray] = []
        with obs.span("retrieve") as retrieve:
            for stream, ctx in zip(streams, contexts):
                per_query.append(CandidatePipeline.drain(stream, plan, ctx))
        for ctx in contexts:
            ctx.retrieval_seconds = retrieve.duration / max(len(contexts), 1)
        ranked = self.evaluate_block(
            queries, per_query, _resolve_eval_k(plan), contexts
        )
        post = self._post_stages(plan, reranker, partner)
        results: list[SearchResult] = []
        for index, (ctx, (ids, dists)) in enumerate(zip(contexts, ranked)):
            if post:
                ids, dists = _run_post_stages(
                    post, queries[index], ids, dists, ctx
                )
            ctx.total_seconds = (
                ctx.retrieval_seconds
                + ctx.evaluation_seconds
                + _post_seconds(ctx)
            )
            results.append(
                SearchResult(
                    ids,
                    dists,
                    ctx.n_candidates,
                    ctx.n_buckets_probed,
                    {"stats": ctx},
                )
            )
        obs.observe_batch(self.name, contexts)
        return results

    def _post_stages(
        self,
        plan: QueryPlan,
        reranker: Evaluator | None,
        partner: FusionPartner | None,
    ) -> list[Stage]:
        """The per-result stages the batch paths apply after evaluation.

        Empty for plain plans — the batched hot path then runs exactly
        the pre-pipeline code with zero per-query stage overhead, which
        is what keeps it bit-identical to per-query execution.
        """
        stages: list[Stage] = []
        if plan.rerank is not None:
            assert reranker is not None
            stages.append(RerankStage(reranker, plan.rerank))
        if plan.fusion is not None:
            assert partner is not None
            stages.append(FuseStage(partner, plan.fusion, plan))
        if stages:
            stages.append(TruncateStage(plan.k))
        return stages

    def execute_batch_ordered(
        self,
        queries: np.ndarray,
        plan: QueryPlan,
        table: BucketTable,
        scores: np.ndarray,
        bucket_signatures: np.ndarray,
    ) -> list[SearchResult]:
        """Batched execution from a precomputed ``(B, nb)`` score matrix.

        The fast path behind ``search_batch``: every query's probe order
        is ascending ``(score, bucket signature)`` — the order the
        sorting probers (and, over occupied buckets, GQR) produce — so
        the whole batch's bucket orders come from one vectorised stable
        argsort and the candidate gather from one cumulative-sum drain,
        instead of B generator walks.  With a :attr:`parallel` executor
        attached, large batches shard by contiguous query ranges across
        its thread pool, bit-identical to serial execution (the probe
        orders and ragged kernels are per-row independent).
        """
        if self.parallel is not None and self.parallel.should_split(
            len(queries)
        ):
            return self.parallel.run_ordered(
                self, queries, plan, table, scores, bucket_signatures
            )
        return self._execute_batch_ordered_serial(
            queries, plan, table, scores, bucket_signatures
        )

    def _execute_batch_ordered_serial(
        self,
        queries: np.ndarray,
        plan: QueryPlan,
        table: BucketTable,
        scores: np.ndarray,
        bucket_signatures: np.ndarray,
    ) -> list[SearchResult]:
        budget = plan.n_candidates
        if budget is None:
            raise ValueError("batched execution needs a candidate budget")
        reranker, partner = self._resolve_stages(plan)
        eval_k = _resolve_eval_k(plan)
        n_queries, n_buckets = scores.shape
        if n_buckets == 0:
            return [self.execute(query, plan, iter(())) for query in queries]
        with obs.span("retrieve") as retrieve:
            bucket_signatures = np.asarray(bucket_signatures, dtype=np.int64)
            if np.any(np.diff(bucket_signatures) < 0):
                resort = np.argsort(bucket_signatures, kind="stable")
                bucket_signatures = bucket_signatures[resort]
                scores = scores[:, resort]
            layout_fn = getattr(table, "dense_layout", None)
            layout = layout_fn() if layout_fn is not None else None
            if layout is not None and np.array_equal(
                layout[0], bucket_signatures
            ):
                _, sizes, bucket_offsets, ids_flat = layout
            else:
                bucket_ids = [
                    table.get(int(sig)) for sig in bucket_signatures
                ]
                sizes = np.fromiter(
                    (len(ids) for ids in bucket_ids),
                    dtype=np.int64,
                    count=n_buckets,
                )
                ids_flat = np.concatenate(bucket_ids)
                bucket_offsets = np.concatenate(([0], np.cumsum(sizes)[:-1]))
            order, cumulative, stops = _probe_prefix(
                scores, bucket_signatures, sizes, budget
            )
            # Ragged gather of every query's probed buckets in one shot.
            width = order.shape[1]
            col_mask = np.arange(width)[np.newaxis, :] <= stops[:, np.newaxis]
            flat_buckets = order[col_mask]
            lengths = sizes[flat_buckets]
            ends = np.cumsum(lengths)
            within = np.arange(int(ends[-1])) - np.repeat(
                ends - lengths, lengths
            )
            all_candidates = ids_flat[
                np.repeat(bucket_offsets[flat_buckets], lengths) + within
            ]
            counts = cumulative[np.arange(n_queries), stops]
            contexts = [
                ExecutionContext(
                    n_buckets_probed=int(stop) + 1, n_candidates=int(count)
                )
                for stop, count in zip(stops, counts)
            ]
        for ctx in contexts:
            ctx.retrieval_seconds = retrieve.duration / max(n_queries, 1)
        if (
            isinstance(self.evaluator, ExactEvaluator)
            and self.evaluator.metric in _RAGGED_METRICS
        ):
            with obs.span("evaluate") as evaluate:
                dists = _ragged_distances(
                    queries,
                    self.evaluator._vectors(),
                    all_candidates,
                    counts,
                    self.evaluator.metric,
                )
                ranked = _block_top_k(all_candidates, dists, counts, eval_k)
            for ctx in contexts:
                ctx.evaluation_seconds = evaluate.duration / max(n_queries, 1)
        else:
            per_query = np.split(all_candidates, np.cumsum(counts)[:-1])
            ranked = self.evaluate_block(queries, per_query, eval_k, contexts)
        post = self._post_stages(plan, reranker, partner)
        results: list[SearchResult] = []
        for index, (ctx, (ids, dists)) in enumerate(zip(contexts, ranked)):
            if post:
                ids, dists = _run_post_stages(
                    post, queries[index], ids, dists, ctx
                )
            ctx.total_seconds = (
                ctx.retrieval_seconds
                + ctx.evaluation_seconds
                + _post_seconds(ctx)
            )
            results.append(
                SearchResult(
                    ids,
                    dists,
                    ctx.n_candidates,
                    ctx.n_buckets_probed,
                    {"stats": ctx},
                )
            )
        obs.observe_batch(self.name, contexts)
        return results

    def evaluate_block(
        self,
        queries: np.ndarray,
        per_query_candidates: list[np.ndarray],
        k: int,
        contexts: list[ExecutionContext],
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Amortised evaluation of a whole candidate block.

        Stacks every query's candidate vectors into one ragged block and
        scores it with a single einsum (see :func:`_ragged_distances`)
        instead of one BLAS call per query, then applies the shared
        top-``k`` rule per segment.  Only defined for
        :class:`ExactEvaluator` over the built-in metrics; other
        evaluators fall back to per-query evaluation.
        """
        results: list[tuple[np.ndarray, np.ndarray]]
        with obs.span("evaluate") as evaluate:
            if not (
                isinstance(self.evaluator, ExactEvaluator)
                and self.evaluator.metric in _RAGGED_METRICS
            ):
                results = [
                    self.evaluator.evaluate(query, candidates, k)
                    for query, candidates in zip(
                        queries, per_query_candidates
                    )
                ]
            else:
                counts = np.fromiter(
                    (len(c) for c in per_query_candidates),
                    dtype=np.int64,
                    count=len(per_query_candidates),
                )
                results = []
                if counts.sum():
                    stacked = np.concatenate(per_query_candidates)
                    dists = _ragged_distances(
                        np.asarray(queries, dtype=np.float64),
                        self.evaluator._vectors(),
                        stacked,
                        counts,
                        self.evaluator.metric,
                    )
                    per_dists = np.split(dists, np.cumsum(counts)[:-1])
                    for candidates, row in zip(
                        per_query_candidates, per_dists
                    ):
                        if len(candidates):
                            results.append(
                                CandidatePipeline.top_k(candidates, row, k)
                            )
                        else:
                            results.append((_EMPTY_IDS, _EMPTY_DISTS))
                else:
                    results = [
                        (_EMPTY_IDS, _EMPTY_DISTS)
                    ] * len(per_query_candidates)
        for ctx in contexts:
            ctx.evaluation_seconds = evaluate.duration / max(len(contexts), 1)
        return results
