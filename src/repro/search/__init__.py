"""High-level search APIs over the hashing and probing substrates."""

from repro.search.compact_index import CompactHashIndex
from repro.search.dynamic_index import DynamicHashIndex
from repro.search.results import SearchResult
from repro.search.stream_index import StreamSearchIndex
from repro.search.searcher import (
    HashIndex,
    IMISearchIndex,
    MIHSearchIndex,
    evaluate_candidates,
)

__all__ = [
    "CompactHashIndex",
    "DynamicHashIndex",
    "HashIndex",
    "IMISearchIndex",
    "MIHSearchIndex",
    "SearchResult",
    "StreamSearchIndex",
    "evaluate_candidates",
]
