"""High-level search APIs over the hashing and probing substrates."""

from repro.search.cache import (
    QueryResultCache,
    cache_token,
    query_fingerprint,
)
from repro.search.compact_index import CompactHashIndex
from repro.search.dynamic_index import DynamicHashIndex
from repro.search.engine import (
    ADCEvaluator,
    CandidatePipeline,
    CodeEvaluator,
    ExactEvaluator,
    ExecutionContext,
    QueryEngine,
    QueryPlan,
    validate_query,
    validate_query_batch,
)
from repro.search.parallel import ParallelBatchExecutor
from repro.search.results import SearchResult
from repro.search.shm import (
    SharedBucketTable,
    SharedIndexPublication,
    SharedIndexSpec,
)
from repro.search.searcher import (
    HashIndex,
    IMISearchIndex,
    MIHSearchIndex,
    evaluate_candidates,
)
from repro.search.stages import (
    FusionSpec,
    IndexFusionPartner,
    RerankSpec,
    linear_fusion,
)
from repro.search.stream_index import StreamSearchIndex

__all__ = [
    "ADCEvaluator",
    "CandidatePipeline",
    "CodeEvaluator",
    "CompactHashIndex",
    "DynamicHashIndex",
    "ExactEvaluator",
    "ExecutionContext",
    "FusionSpec",
    "HashIndex",
    "IMISearchIndex",
    "IndexFusionPartner",
    "MIHSearchIndex",
    "ParallelBatchExecutor",
    "QueryEngine",
    "QueryPlan",
    "QueryResultCache",
    "RerankSpec",
    "SearchResult",
    "SharedBucketTable",
    "SharedIndexPublication",
    "SharedIndexSpec",
    "StreamSearchIndex",
    "cache_token",
    "evaluate_candidates",
    "linear_fusion",
    "query_fingerprint",
    "validate_query",
    "validate_query_batch",
]
