"""Composable query-pipeline stages: the engine's execution vocabulary.

The paper's two-step loop (retrieval gathers candidates, evaluation
re-ranks them exactly) generalises to a typed **stage pipeline**::

    Retrieve → DedupBudget → Evaluate → Rerank → Fuse → Truncate

Each stage is a small class with a uniform ``run(ctx, state)`` contract:
it reads and mutates one :class:`PipelineState` and records whatever it
learned into the query's ``ExecutionContext``.  ``Stage.execute`` wraps
``run`` in an :func:`repro.obs.span` named after the stage and stores
the measured wall time under ``ctx.stage_seconds[name]`` — so every
stage is individually visible in sampled traces and the
``repro_query_stage_seconds`` histogram without writing any
instrumentation of its own.

The always-on prefix (Retrieve / DedupBudget / Evaluate / Truncate)
reproduces the classic engine path bit-for-bit; the two optional
production stages open the hybrid-retrieval scenario:

* :class:`RerankStage` — re-scores the evaluation stage's surviving
  pool with a second, more faithful scorer: exact distances over raw
  vectors (``mode="exact"``) or PQ/OPQ asymmetric distance over fine
  codes (``mode="adc"``).  This is the "hashing is a candidate stage"
  architecture of the related-work revisit: a cheap estimator ranks the
  pool, an expensive scorer fixes the top.
* :class:`FuseStage` — linear score fusion of this engine's ranked list
  with a second engine's (two hashers, or hash + filtered linear scan):
  min-max normalise both score lists, take the weighted sum, rank
  ascending.  Candidates missing from one list get that list's worst
  normalised score (1.0).

Stages compose **only** through :func:`build_pipeline` driven by a
``QueryPlan`` — constructing or calling them from outside
``repro/search`` is a lint error (reprolint RL011): the engine owns
execution order, span naming and stats accounting, and a stage invoked
on its own bypasses all three.  The plan-vocabulary dataclasses
(:class:`RerankSpec`, :class:`FusionSpec`) and the fusion adapters are
public API and freely importable.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Protocol

import numpy as np

from repro import obs

if TYPE_CHECKING:
    from repro.search.engine import (
        Evaluator,
        ExecutionContext,
        QueryEngine,
        QueryPlan,
    )
    from repro.search.results import SearchResult

__all__ = [
    "DedupBudgetStage",
    "EvaluateStage",
    "FusableIndex",
    "FuseStage",
    "FusionPartner",
    "FusionSpec",
    "IndexFusionPartner",
    "PipelineState",
    "RerankSpec",
    "RerankStage",
    "RetrieveStage",
    "Stage",
    "TruncateStage",
    "build_pipeline",
    "drain_stream",
    "linear_fusion",
]

_EMPTY_IDS = np.empty(0, dtype=np.int64)
_EMPTY_SCORES = np.empty(0, dtype=np.float64)


# -- plan vocabulary ---------------------------------------------------

@dataclass(frozen=True)
class RerankSpec:
    """Parameters of the optional :class:`RerankStage`.

    Attributes
    ----------
    mode:
        ``"exact"`` (raw-vector distances) or ``"adc"`` (PQ/OPQ
        asymmetric distance over fine codes).  Which modes are
        available depends on the index — every raw-vector index offers
        ``"exact"``; indexes built with a fine quantizer also offer
        ``"adc"``.
    pool:
        How many evaluation survivors feed the re-ranker.  ``None``
        (default) re-scores the *entire* candidate set; an integer
        keeps the evaluation stage's best ``pool`` items — the matched-
        budget setting the IR report compares at.
    """

    mode: str = "exact"
    pool: int | None = None

    def __post_init__(self) -> None:
        if self.mode not in ("exact", "adc"):
            raise ValueError(
                f"rerank mode must be 'exact' or 'adc', got {self.mode!r}"
            )
        if self.pool is not None and self.pool < 1:
            raise ValueError(f"rerank pool must be positive, got {self.pool}")


@dataclass(frozen=True)
class FusionSpec:
    """Parameters of the optional :class:`FuseStage`.

    Attributes
    ----------
    weight:
        Weight of the *primary* engine's normalised scores in the
        linear combination; the partner contributes ``1 - weight``.
    pool:
        Ranked-list depth requested from the fusion partner (and, when
        no rerank precedes fusion, kept from the primary evaluation).
        ``None`` defaults to the plan's ``k``.
    """

    weight: float = 0.5
    pool: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.weight <= 1.0:
            raise ValueError(
                f"fusion weight must be in [0, 1], got {self.weight}"
            )
        if self.pool is not None and self.pool < 1:
            raise ValueError(f"fusion pool must be positive, got {self.pool}")


class FusionPartner(Protocol):
    """What :class:`FuseStage` needs from the secondary engine."""

    def fusion_pool(
        self, query: np.ndarray, plan: QueryPlan
    ) -> tuple[np.ndarray, np.ndarray]:
        """The partner's ranked ``(ids, scores)`` pool for ``query``."""
        ...

    def fusion_identity(self) -> tuple[object, ...]:
        """Hashable identity folded into the primary engine's cache keys.

        Must change whenever the partner's answers could change (its
        engine token and generation at minimum), so fused results can
        never be served stale from the primary cache.
        """
        ...


class FusableIndex(Protocol):
    """The index surface :class:`IndexFusionPartner` adapts."""

    @property
    def engine(self) -> QueryEngine: ...

    def search(
        self, query: np.ndarray, k: int, n_candidates: int
    ) -> SearchResult: ...


class IndexFusionPartner:
    """Adapt any engine-backed index as a :class:`FusionPartner`.

    Works with every front-end in :mod:`repro.search` (they all expose
    ``search(query, k, n_candidates)`` and an ``engine`` property).
    The partner runs its own full pipeline per fused query — through
    its own cache, if one is attached.

    Parameters
    ----------
    index:
        The secondary index whose ranked list is fused in.
    n_candidates:
        Candidate budget for the partner's searches; defaults to the
        primary plan's budget (matched-budget fusion).
    """

    def __init__(
        self, index: FusableIndex, n_candidates: int | None = None
    ) -> None:
        if n_candidates is not None and n_candidates < 1:
            raise ValueError(
                f"n_candidates must be positive, got {n_candidates}"
            )
        self._index = index
        self._n_candidates = n_candidates

    def fusion_pool(
        self, query: np.ndarray, plan: QueryPlan
    ) -> tuple[np.ndarray, np.ndarray]:
        pool = plan.k
        if plan.fusion is not None and plan.fusion.pool is not None:
            pool = plan.fusion.pool
        budget = self._n_candidates
        if budget is None:
            budget = (
                plan.n_candidates if plan.n_candidates is not None else pool
            )
        result = self._index.search(query, pool, budget)
        return (
            np.asarray(result.ids, dtype=np.int64),
            np.asarray(result.distances, dtype=np.float64),
        )

    def fusion_identity(self) -> tuple[object, ...]:
        return ("index", *self._index.engine.identity(), self._n_candidates)


# -- pipeline state and the stage contract -----------------------------

@dataclass
class PipelineState:
    """Mutable state threaded through one query's stage pipeline.

    ``stream`` carries the lazy retrieval source until
    :class:`DedupBudgetStage` drains it into ``candidates``;
    :class:`EvaluateStage` turns candidates into the ranked
    ``(ids, scores)`` pair that later stages refine.
    """

    query: np.ndarray
    stream: Iterable[np.ndarray] | None = None
    candidates: np.ndarray = field(default_factory=lambda: _EMPTY_IDS)
    ids: np.ndarray = field(default_factory=lambda: _EMPTY_IDS)
    scores: np.ndarray = field(default_factory=lambda: _EMPTY_SCORES)


class Stage:
    """Base class of every pipeline stage.

    Subclasses set ``name`` (the span / stats label) and implement
    :meth:`run`.  :meth:`execute` is the engine's entry point: it wraps
    ``run`` in an obs span and records the measured duration into
    ``ctx.stage_seconds`` — a stage never times itself.
    """

    name: str = "stage"

    def run(self, ctx: ExecutionContext, state: PipelineState) -> None:
        """Advance ``state``; record stage facts into ``ctx``."""
        raise NotImplementedError

    def execute(self, ctx: ExecutionContext, state: PipelineState) -> None:
        """Run the stage under its span and account its wall time."""
        with obs.span(self.name) as span:
            self.run(ctx, state)
        ctx.stage_seconds[self.name] = span.duration


def drain_stream(
    stream: Iterable[np.ndarray],
    plan: QueryPlan,
    ctx: ExecutionContext,
) -> np.ndarray:
    """Collect candidate ids until a stopping criterion fires.

    Mirrors the retrieval loop of Algorithms 1 and 2: each yielded
    array is one probed non-empty bucket; the final bucket is taken
    whole, so slightly more than ``n_candidates`` ids may return.

    Candidates are deduplicated across (and within) buckets: an id the
    stream already yielded is dropped, so ``ctx.n_candidates`` counts
    each retrieved item exactly once — the evaluation cost actually
    paid — and the candidate budget is spent on *distinct* items.
    Dedup and budget accounting are interleaved by design (a duplicate
    must not consume budget), which is why they share one stage instead
    of two.
    """
    deadline = (
        None if plan.time_budget is None else obs.now() + plan.time_budget
    )
    found: list[np.ndarray] = []
    sampled_sizes = ctx.bucket_sizes
    seen: set[int] = set()
    total = 0
    buckets = 0
    for ids in stream:
        buckets += 1
        if len(ids):
            fresh = [
                i for i in dict.fromkeys(ids.tolist()) if i not in seen
            ]
            if len(fresh) != len(ids):
                ids = np.asarray(fresh, dtype=np.int64)
            seen.update(fresh)
        found.append(ids)
        total += len(ids)
        if sampled_sizes is not None:
            sampled_sizes.append(len(ids))
        if plan.n_candidates is not None and total >= plan.n_candidates:
            break
        if plan.max_buckets is not None and buckets >= plan.max_buckets:
            break
        if deadline is not None and obs.now() >= deadline:
            break
    ctx.n_buckets_probed = buckets
    ctx.n_candidates = total
    if not found:
        return _EMPTY_IDS
    return np.concatenate(found)


# -- the stages --------------------------------------------------------

class RetrieveStage(Stage):
    """Bind the candidate source.

    Retrieval is lazy by construction — probe orders are generators and
    the cost of walking them is paid where the budget decisions are
    made, inside :class:`DedupBudgetStage` — so this stage's own span
    measures only source binding.  A custom ``source`` callable lets a
    future tiered/graph retriever swap the stream without touching the
    rest of the pipeline.
    """

    name = "retrieve"

    def __init__(
        self,
        source: Callable[[PipelineState], Iterable[np.ndarray]] | None = None,
    ) -> None:
        self._source = source

    def run(self, ctx: ExecutionContext, state: PipelineState) -> None:
        if self._source is not None:
            state.stream = self._source(state)
        if state.stream is None:
            state.stream = iter(())


class DedupBudgetStage(Stage):
    """Drain the stream under the plan's stopping criteria, deduplicated.

    See :func:`drain_stream` for the accounting contract; this stage's
    span carries the true retrieval cost (the generators actually run
    here).
    """

    name = "dedup_budget"

    def __init__(self, plan: QueryPlan) -> None:
        self._plan = plan

    def run(self, ctx: ExecutionContext, state: PipelineState) -> None:
        assert state.stream is not None
        state.candidates = drain_stream(state.stream, self._plan, ctx)


class EvaluateStage(Stage):
    """Score the candidate set and keep the best ``keep`` of them.

    ``keep`` is the plan's ``evaluate_keep()``: ``k`` for plain plans
    (the classic path, bit-identical), the rerank/fusion pool size when
    a later stage re-scores, and ``None`` to keep the whole scored set.
    """

    name = "evaluate"

    def __init__(self, evaluator: Evaluator, keep: int | None) -> None:
        self._evaluator = evaluator
        self._keep = keep

    def run(self, ctx: ExecutionContext, state: PipelineState) -> None:
        keep = (
            self._keep if self._keep is not None else len(state.candidates)
        )
        state.ids, state.scores = self._evaluator.evaluate(
            state.query, state.candidates, keep
        )


class RerankStage(Stage):
    """Re-score the surviving pool with a second, more faithful scorer.

    The re-ranker is any :class:`~repro.search.engine.Evaluator` —
    exact distances or ADC — resolved by the engine from the plan's
    :class:`RerankSpec`.  The whole pool is re-ranked (selection to
    ``k`` is :class:`TruncateStage`'s job, so a following
    :class:`FuseStage` still sees the full re-scored pool); ties break
    by id under the engine's shared top-k rule, because the re-ranker
    *is* an evaluator.
    """

    name = "rerank"

    def __init__(self, reranker: Evaluator, spec: RerankSpec) -> None:
        self._reranker = reranker
        self._spec = spec

    def run(self, ctx: ExecutionContext, state: PipelineState) -> None:
        pool_ids = state.ids
        ctx.stage_stats[self.name] = {
            "mode": self._spec.mode,
            "pool": int(len(pool_ids)),
        }
        state.ids, state.scores = self._reranker.evaluate(
            state.query, pool_ids, len(pool_ids)
        )


class FuseStage(Stage):
    """Linear score fusion with a second engine's ranked list.

    Fetches the partner's pool (its own full pipeline, possibly
    cached), then combines both lists with :func:`linear_fusion`.  The
    resulting ``scores`` are fused rank scores in ``[0, 1]``, not
    distances.
    """

    name = "fuse"

    def __init__(
        self, partner: FusionPartner, spec: FusionSpec, plan: QueryPlan
    ) -> None:
        self._partner = partner
        self._spec = spec
        self._plan = plan

    def run(self, ctx: ExecutionContext, state: PipelineState) -> None:
        other_ids, other_scores = self._partner.fusion_pool(
            state.query, self._plan
        )
        ctx.stage_stats[self.name] = {
            "weight": self._spec.weight,
            "primary": int(len(state.ids)),
            "partner": int(len(other_ids)),
        }
        state.ids, state.scores = linear_fusion(
            state.ids, state.scores, other_ids, other_scores,
            self._spec.weight,
        )


class TruncateStage(Stage):
    """Cut the ranked list to the plan's ``k`` (a no-op when already ≤ k)."""

    name = "truncate"

    def __init__(self, k: int) -> None:
        self._k = k

    def run(self, ctx: ExecutionContext, state: PipelineState) -> None:
        if len(state.ids) > self._k:
            state.ids = state.ids[: self._k]
            state.scores = state.scores[: self._k]


# -- fusion arithmetic -------------------------------------------------

def linear_fusion(
    ids_a: np.ndarray,
    scores_a: np.ndarray,
    ids_b: np.ndarray,
    scores_b: np.ndarray,
    weight: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Weighted min-max score fusion of two ranked lists, deterministic.

    Each list's scores are min-max normalised to ``[0, 1]`` (a constant
    list normalises to all zeros); a candidate missing from one list
    receives that list's *worst* normalised score (1.0).  The fused
    score is ``weight·norm_a + (1-weight)·norm_b``, ranked ascending
    with ties broken by id — the engine's shared tie rule.
    """
    ids_a = np.asarray(ids_a, dtype=np.int64)
    ids_b = np.asarray(ids_b, dtype=np.int64)
    if not len(ids_a) and not len(ids_b):
        return _EMPTY_IDS, _EMPTY_SCORES
    union = np.union1d(ids_a, ids_b)
    norm_a = np.ones(len(union), dtype=np.float64)
    norm_b = np.ones(len(union), dtype=np.float64)
    if len(ids_a):
        norm_a[np.searchsorted(union, ids_a)] = _minmax(scores_a)
    if len(ids_b):
        norm_b[np.searchsorted(union, ids_b)] = _minmax(scores_b)
    fused = weight * norm_a + (1.0 - weight) * norm_b
    order = np.lexsort((union, fused))
    return union[order], fused[order]


def _minmax(scores: np.ndarray) -> np.ndarray:
    scores = np.asarray(scores, dtype=np.float64)
    if not len(scores):
        return _EMPTY_SCORES
    low = float(scores.min())
    span = float(scores.max()) - low
    if span <= 0.0:
        return np.zeros(len(scores), dtype=np.float64)
    return (scores - low) / span


# -- pipeline assembly -------------------------------------------------

def build_pipeline(
    plan: QueryPlan,
    evaluator: Evaluator,
    reranker: Evaluator | None = None,
    partner: FusionPartner | None = None,
    source: Callable[[PipelineState], Iterable[np.ndarray]] | None = None,
) -> list[Stage]:
    """The declarative stage list one plan executes, in order.

    The caller (the engine) resolves ``reranker`` / ``partner`` from
    the plan before building; a plan that names a stage whose
    dependency is missing is an error here, not deep inside execution.
    """
    stages: list[Stage] = [
        RetrieveStage(source),
        DedupBudgetStage(plan),
        EvaluateStage(evaluator, plan.evaluate_keep()),
    ]
    if plan.rerank is not None:
        if reranker is None:
            raise ValueError(
                "plan requests a rerank stage but no reranker was resolved"
            )
        stages.append(RerankStage(reranker, plan.rerank))
    if plan.fusion is not None:
        if partner is None:
            raise ValueError(
                "plan requests a fuse stage but no fusion partner was "
                "resolved"
            )
        stages.append(FuseStage(partner, plan.fusion, plan))
    stages.append(TruncateStage(plan.k))
    return stages
