"""Generic search wrapper over any candidate-stream index.

QALSH and C2LSH (related-work LSH baselines) produce candidate-id
streams rather than bucket signatures; this wrapper attaches the shared
evaluation step (exact re-rank under a metric) so they plug into the
same harness as every other method.
"""

from __future__ import annotations

import threading
from collections.abc import Iterator
from typing import Protocol

import numpy as np

from repro.search.cache import QueryResultCache
from repro.search.engine import (
    ExactEvaluator,
    QueryEngine,
    QueryPlan,
    validate_query,
)
from repro.search.results import SearchResult
from repro.search.stages import RerankSpec

__all__ = ["CandidateStreamSource", "StreamSearchIndex"]


class CandidateStreamSource(Protocol):
    """What :class:`StreamSearchIndex` needs from the wrapped index."""

    @property
    def num_items(self) -> int: ...

    def candidate_stream(self, query: np.ndarray) -> Iterator[np.ndarray]: ...


class StreamSearchIndex:
    """Exact re-ranking over a ``candidate_stream(query)`` provider.

    Parameters
    ----------
    stream_index:
        Object with ``candidate_stream(query) -> Iterator[np.ndarray]``
        and ``num_items`` (e.g. :class:`~repro.index.qalsh.QALSH` or
        :class:`~repro.index.c2lsh.C2LSH`).
    data:
        The ``(n, d)`` raw vectors for evaluation.
    cache:
        Optional :class:`~repro.search.cache.QueryResultCache`.  The
        wrapped index has no mutation hooks to intercept, so each
        ``search`` compares ``num_items`` against the last-seen value
        and bumps the engine generation when the stream grew — an
        append invalidates every cached result before it can be served.
    """

    def __init__(
        self,
        stream_index: CandidateStreamSource,
        data: np.ndarray,
        metric: str = "euclidean",
        cache: QueryResultCache | None = None,
    ) -> None:
        self._inner = stream_index
        self._data = np.asarray(data, dtype=np.float64)
        self._metric = metric
        self._dim = self._data.shape[1] if self._data.ndim == 2 else None
        self._engine = QueryEngine(
            ExactEvaluator(self._data, metric), name="stream", cache=cache
        )
        self._engine.rerankers["exact"] = self._engine.evaluator
        self._known_items = stream_index.num_items
        # Fusion plans run this index's search on pool worker threads;
        # the check-and-bump in _sync_generation must be atomic or two
        # threads can tear _known_items and double-bump the generation.
        self._sync_lock = threading.Lock()

    @property
    def num_items(self) -> int:
        return self._inner.num_items

    @property
    def engine(self) -> QueryEngine:
        return self._engine

    def candidate_stream(self, query: np.ndarray) -> Iterator[np.ndarray]:
        yield from self._inner.candidate_stream(query)

    def _sync_generation(self) -> None:
        with self._sync_lock:
            current = self._inner.num_items
            if current != self._known_items:
                self._known_items = current
                self._engine.bump_generation()

    def search(
        self,
        query: np.ndarray,
        k: int,
        n_candidates: int,
        rerank: RerankSpec | None = None,
    ) -> SearchResult:
        query = validate_query(query, self._dim)
        self._sync_generation()
        plan = QueryPlan(
            k=k, n_candidates=n_candidates, metric=self._metric, rerank=rerank
        )
        return self._engine.execute(query, plan, self.candidate_stream(query))
