"""Generic search wrapper over any candidate-stream index.

QALSH and C2LSH (related-work LSH baselines) produce candidate-id
streams rather than bucket signatures; this wrapper attaches the shared
evaluation step (exact re-rank under a metric) so they plug into the
same harness as every other method.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.index.distance import METRICS
from repro.search.results import SearchResult
from repro.search.searcher import evaluate_candidates

__all__ = ["StreamSearchIndex"]


class StreamSearchIndex:
    """Exact re-ranking over a ``candidate_stream(query)`` provider.

    Parameters
    ----------
    stream_index:
        Object with ``candidate_stream(query) -> Iterator[np.ndarray]``
        and ``num_items`` (e.g. :class:`~repro.index.qalsh.QALSH` or
        :class:`~repro.index.c2lsh.C2LSH`).
    data:
        The ``(n, d)`` raw vectors for evaluation.
    """

    def __init__(self, stream_index, data: np.ndarray, metric: str = "euclidean") -> None:
        self._inner = stream_index
        self._data = np.asarray(data, dtype=np.float64)
        if metric not in METRICS:
            raise KeyError(
                f"unknown metric {metric!r}; options: {sorted(METRICS)}"
            )
        self._metric = metric

    @property
    def num_items(self) -> int:
        return self._inner.num_items

    def candidate_stream(self, query: np.ndarray) -> Iterator[np.ndarray]:
        yield from self._inner.candidate_stream(query)

    def search(self, query: np.ndarray, k: int, n_candidates: int) -> SearchResult:
        query = np.asarray(query, dtype=np.float64)
        found: list[np.ndarray] = []
        total = 0
        batches = 0
        for ids in self.candidate_stream(query):
            batches += 1
            found.append(ids)
            total += len(ids)
            if total >= n_candidates:
                break
        candidates = (
            np.concatenate(found) if found else np.empty(0, dtype=np.int64)
        )
        ids, dists = evaluate_candidates(
            query, self._data, candidates, k, self._metric
        )
        return SearchResult(ids, dists, total, batches)
