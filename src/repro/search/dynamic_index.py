"""Dynamic ANN index: ingest and expire items without rebuilding.

Wraps a fitted hasher and a :class:`~repro.index.dynamic.DynamicHashTable`
into the same search interface as :class:`~repro.search.searcher.HashIndex`.
The hash functions stay fixed (trained once on a representative sample,
as L2H deployments do); items stream in and out of the bucket table.
Search delegates to the shared query-execution engine, with the exact
evaluator wired to the index's live (growable) vector storage.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.core.gqr import GQR
from repro.hashing.base import BinaryHasher
from repro.index.distance import METRICS
from repro.index.dynamic import DynamicHashTable
from repro.probing.base import BucketProber
from repro.search.cache import QueryResultCache
from repro.search.engine import (
    ExactEvaluator,
    QueryEngine,
    QueryPlan,
    validate_query,
)
from repro.search.results import SearchResult
from repro.search.stages import RerankSpec

__all__ = ["DynamicHashIndex"]


class DynamicHashIndex:
    """Mutable L2H index over a fixed, pre-fitted hasher.

    Parameters
    ----------
    hasher:
        A *fitted* :class:`BinaryHasher` (train it on a representative
        sample first; retraining invalidates stored codes, so an
        unfitted hasher is rejected).
    dim:
        Dimensionality of the vectors to be indexed.
    prober, metric:
        As in :class:`~repro.search.searcher.HashIndex`.
    cache:
        Optional :class:`~repro.search.cache.QueryResultCache`.  Every
        ``add``/``remove`` bumps the engine's generation number, so a
        mutation can never serve a stale cached result.
    """

    def __init__(
        self,
        hasher: BinaryHasher,
        dim: int,
        prober: BucketProber | None = None,
        metric: str = "euclidean",
        cache: QueryResultCache | None = None,
    ) -> None:
        if not hasher.is_fitted:
            raise ValueError(
                "DynamicHashIndex needs a pre-fitted hasher; fit it on a "
                "representative sample first"
            )
        if metric not in METRICS:
            raise KeyError(
                f"unknown metric {metric!r}; options: {sorted(METRICS)}"
            )
        if dim < 1:
            raise ValueError("dim must be positive")
        self._hasher = hasher
        self._dim = dim
        self._prober = prober if prober is not None else GQR()
        self._metric = metric
        self._table = DynamicHashTable(hasher.code_length)
        # Item storage: amortised-doubling array + free-id recycling.
        self._vectors = np.empty((0, dim), dtype=np.float64)
        self._size = 0
        self._free_ids: list[int] = []
        # The storage array is reallocated as it grows, so the evaluator
        # is wired to a live view rather than one (stale) array object.
        self._engine = QueryEngine(
            ExactEvaluator(lambda: self._vectors, metric),
            name="dynamic",
            cache=cache,
        )
        self._engine.rerankers["exact"] = self._engine.evaluator

    @property
    def num_items(self) -> int:
        return self._table.num_items

    @property
    def code_length(self) -> int:
        return self._hasher.code_length

    @property
    def table(self) -> DynamicHashTable:
        return self._table

    @property
    def engine(self) -> QueryEngine:
        return self._engine

    def _grow_to(self, capacity: int) -> None:
        if capacity <= len(self._vectors):
            return
        new_capacity = max(capacity, 2 * len(self._vectors), 16)
        grown = np.empty((new_capacity, self._dim), dtype=np.float64)
        grown[: self._size] = self._vectors[: self._size]
        self._vectors = grown

    def add(self, items: np.ndarray) -> np.ndarray:
        """Insert one vector or a batch; returns the assigned item ids."""
        items = np.atleast_2d(np.asarray(items, dtype=np.float64))
        if items.shape[1] != self._dim:
            raise ValueError(
                f"expected dimensionality {self._dim}, got {items.shape[1]}"
            )
        codes = self._hasher.encode(items)
        ids = np.empty(len(items), dtype=np.int64)
        for row, (item, code) in enumerate(zip(items, codes)):
            if self._free_ids:
                item_id = self._free_ids.pop()
            else:
                item_id = self._size
                self._grow_to(self._size + 1)
                self._size += 1
            self._vectors[item_id] = item
            self._table.add(item_id, code)
            ids[row] = item_id
        self._engine.bump_generation()
        return ids

    def remove(self, item_ids: np.ndarray | int) -> None:
        """Delete items by id; their ids may be recycled by later adds."""
        for item_id in np.atleast_1d(np.asarray(item_ids, dtype=np.int64)):
            self._table.remove(int(item_id))
            self._free_ids.append(int(item_id))
        self._engine.bump_generation()

    def candidate_stream(self, query: np.ndarray) -> Iterator[np.ndarray]:
        query = validate_query(query, self._dim)
        signature, costs = self._hasher.probe_info(query)
        for bucket in self._prober.probe(self._table, signature, costs):
            ids = self._table.get(bucket)
            if len(ids):
                yield ids

    def search(
        self,
        query: np.ndarray,
        k: int,
        n_candidates: int,
        rerank: RerankSpec | None = None,
    ) -> SearchResult:
        """Approximate kNN over the current live items."""
        query = validate_query(query, self._dim)
        plan = QueryPlan(
            k=k, n_candidates=n_candidates, metric=self._metric, rerank=rerank
        )
        return self._engine.execute(query, plan, self.candidate_stream(query))
