"""Compact index: codes-only storage with asymmetric-QD re-ranking.

A deployment that cannot hold raw vectors in RAM keeps only binary
codes.  The classic architecture (and the one that works — see below)
separates the two roles codes play:

* **probing codes** — short, ``m ≈ log2(N/10)`` bits, so buckets hold
  ~10 items and generate-to-probe enumerates *occupied* buckets
  efficiently (the paper's setting);
* **re-ranking codes** — long (32-63 bits), dense enough to order
  individual candidates.

Candidates from the probing table are then ranked without raw vectors:

* **symmetric** — Hamming distance between long codes, the standard
  baseline;
* **asymmetric** — keep the query side continuous: rank item ``o`` by
  ``Σ_i (c_i(q) ⊕ c_i(o))·|p_i(q)|`` over the *long* code — which is
  exactly the paper's quantization distance evaluated at the item's
  code.  Theorem 2 makes it a scaled lower bound on the true distance,
  and it inherits QD's fine grain: ties are broken by margins instead
  of integer bit counts.

Using a single short code for both roles fails in an instructive way:
short codes bucket well but cannot rank items (a bucket's members all
tie), while probing directly with long codes drowns in the empty
``2^m`` code space — the paper's "long code" problem.  The two-hasher
split is therefore not an optimisation but a requirement, which
``benchmarks/bench_compact_rerank.py`` demonstrates.

Measured honestly: on sign-threshold binary codes the asymmetric
estimator's gain over symmetric Hamming is small (the two mostly agree
once codes are long enough to rank at all) — the well-known large
asymmetric gains in the literature come from multi-bit quantizers like
PQ, where the query-side table carries much more information per
dimension.  The recall ceiling of any code-only re-ranker is set by
the rerank-code length, which the benchmark sweeps.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.core.gqr import GQR
from repro.hashing.base import BinaryHasher
from repro.index.codes import pack_bits
from repro.index.hash_table import HashTable
from repro.probing.base import BucketProber
from repro.quantization.pq import ProductQuantizer
from repro.search.cache import QueryResultCache
from repro.search.engine import (
    ADCEvaluator,
    CodeEvaluator,
    QueryEngine,
    QueryPlan,
    validate_query,
)
from repro.search.results import SearchResult
from repro.search.stages import RerankSpec

__all__ = ["CompactHashIndex"]


class CompactHashIndex:
    """Short-code probing + long-code re-ranking, no raw vectors kept.

    Parameters
    ----------
    probe_hasher:
        Fitted hasher with a short code (the bucket table).
    rerank_hasher:
        Fitted hasher with a long code (the ranking estimator).  May be
        the same object as ``probe_hasher`` — see the module docstring
        for why that degrades ranking.
    data:
        ``(n, d)`` items — encoded once at build time and discarded.
    prober:
        Querying method over the probing table; defaults to GQR.
    rerank:
        ``"asymmetric"`` (QD against each candidate's long code,
        default) or ``"symmetric"`` (Hamming between long codes).
    cache:
        Optional :class:`~repro.search.cache.QueryResultCache`; the
        table is immutable, so cached results never go stale.
    rerank_quantizer:
        Optional fine :class:`~repro.quantization.pq.ProductQuantizer`.
        Its codes are built here, while the raw vectors are still in
        hand, and kept after the vectors are discarded; plans may then
        request ``RerankSpec(mode="adc")`` to re-score the candidate
        pool with asymmetric PQ distance — a sharper estimator than
        the long binary code, still without raw vectors at query time.
    """

    def __init__(
        self,
        probe_hasher: BinaryHasher,
        rerank_hasher: BinaryHasher,
        data: np.ndarray,
        prober: BucketProber | None = None,
        rerank: str = "asymmetric",
        cache: QueryResultCache | None = None,
        rerank_quantizer: ProductQuantizer | None = None,
    ) -> None:
        for hasher in (probe_hasher, rerank_hasher):
            if not hasher.is_fitted:
                raise ValueError(
                    "CompactHashIndex needs pre-fitted hashers (raw data "
                    "is not retained, so they cannot be fit here)"
                )
        if rerank not in ("asymmetric", "symmetric"):
            raise ValueError("rerank must be 'asymmetric' or 'symmetric'")
        data = np.asarray(data, dtype=np.float64)
        self._table = HashTable(probe_hasher.encode(data))
        long_codes = rerank_hasher.encode(data)
        self._long_signatures = np.atleast_1d(
            np.asarray(pack_bits(long_codes), dtype=np.int64)
        )
        self._probe_hasher = probe_hasher
        self._rerank_hasher = rerank_hasher
        self._prober = prober if prober is not None else GQR()
        self._rerank = rerank
        self._dim = data.shape[1] if data.ndim == 2 else None
        self._engine = QueryEngine(
            CodeEvaluator(rerank_hasher, self._long_signatures, rerank),
            name="compact",
            cache=cache,
        )
        if rerank_quantizer is not None:
            if not rerank_quantizer.codebooks:
                rerank_quantizer.fit(data)
            self._engine.rerankers["adc"] = ADCEvaluator(
                rerank_quantizer, rerank_quantizer.encode(data)
            )

    @property
    def num_items(self) -> int:
        return self._table.num_items

    @property
    def rerank(self) -> str:
        return self._rerank

    @property
    def engine(self) -> QueryEngine:
        return self._engine

    def memory_bytes(self) -> int:
        """Long signatures + bucket table — the full index footprint."""
        return int(self._long_signatures.nbytes) + self._table.memory_bytes()

    def candidate_stream(self, query: np.ndarray) -> Iterator[np.ndarray]:
        query = validate_query(query, self._dim)
        signature, costs = self._probe_hasher.probe_info(query)
        for bucket in self._prober.probe(self._table, signature, costs):
            ids = self._table.get(bucket)
            if len(ids):
                yield ids

    def search(
        self,
        query: np.ndarray,
        k: int,
        n_candidates: int,
        rerank: RerankSpec | None = None,
    ) -> SearchResult:
        """kNN by code-based re-ranking (no raw-vector distances).

        Returned ``distances`` are the estimator's values (QD or
        Hamming over the long codes), *not* Euclidean distances —
        unless an ``"adc"`` rerank stage re-scores the pool, in which
        case they are asymmetric PQ distance estimates.
        """
        query = validate_query(query, self._dim)
        plan = QueryPlan(k=k, n_candidates=n_candidates, rerank=rerank)
        return self._engine.execute(query, plan, self.candidate_stream(query))
