"""Query-result caching for the serving layer.

Serving workloads are heavily skewed: a small set of popular queries
accounts for most of the traffic ("A Revisit of Hashing Algorithms for
ANN Search" identifies exploiting this redundancy as the dominant
practical lever once per-query probing is fixed).  This module is the
exploit: an LRU + TTL cache of complete :class:`SearchResult` objects,
keyed on

* a **quantized query fingerprint** — the float64 query rounded to
  ``decimals`` places and hashed, so bit-for-bit re-issues (and near
  re-issues below the rounding granularity) hit;
* the plan's **full serialized stage list**
  (``QueryPlan.stage_list()``) — every stage the plan executes with
  every parameter that shapes its output, so two plans differing in
  *any* stage (a rerank mode, a fusion weight) can never collide —
  plus the fusion partner's identity tuple when one participates;
* the **index identity and generation** — a process-unique token per
  engine plus a monotonically increasing generation number that mutable
  indexes bump on every ``add``/``remove``/append, so a stale hit is
  impossible by construction: entries from an older generation can
  never be looked up again and age out of the LRU.

Time-budgeted plans are never cached (:meth:`QueryResultCache.cacheable`)
— their results depend on wall-clock load, not only on the query.

Hits, misses and evictions are exported through :mod:`repro.obs`
(``repro_cache_hits_total`` / ``..._misses_total`` /
``..._evictions_total``), along with an occupancy gauge and a
hit-latency histogram, when a telemetry session is active.
"""

from __future__ import annotations

import hashlib
import itertools
import threading
from collections import OrderedDict
from collections.abc import Callable
from typing import TYPE_CHECKING

import numpy as np

from repro import obs

if TYPE_CHECKING:
    from repro.search.engine import QueryPlan
    from repro.search.results import SearchResult

__all__ = ["CacheKey", "QueryResultCache", "cache_token", "query_fingerprint"]

#: Cache-key tuple: ``(engine token, generation, serialized stage
#: list, fusion-partner identity, query fingerprint)``.
CacheKey = tuple[
    str,
    int,
    "tuple[tuple[object, ...], ...]",
    "tuple[object, ...]",
    bytes,
]

_TOKENS = itertools.count()


def cache_token(prefix: str) -> str:
    """Process-unique identity token for one cache-keyed entity.

    Two engines built over different data must never share cache
    entries even if they share a ``name``; the monotonically increasing
    suffix guarantees that.
    """
    return f"{prefix}#{next(_TOKENS)}"


def query_fingerprint(query: np.ndarray, decimals: int = 12) -> bytes:
    """Stable 16-byte digest of a query, quantized to ``decimals`` places.

    Rounding collapses sub-precision noise (e.g. a query re-serialised
    through JSON) onto one fingerprint; adding ``0.0`` normalises
    ``-0.0`` to ``+0.0`` so the two zero encodings cannot split an
    entry.  The shape participates so a ``(d,)`` query and a ``(1, d)``
    array never collide.
    """
    arr = np.round(
        np.ascontiguousarray(query, dtype=np.float64), decimals
    )
    arr += 0.0
    digest = hashlib.blake2b(digest_size=16)
    digest.update(repr(arr.shape).encode("ascii"))
    digest.update(arr.tobytes())
    return digest.digest()


class QueryResultCache:
    """LRU + TTL cache of :class:`SearchResult` objects.

    Thread-safe: the parallel batch executor's worker threads and the
    caller's thread may look up and store concurrently.  The cached
    object itself is returned on a hit — ids and distances are the
    bit-identical arrays the uncached execution produced.

    Parameters
    ----------
    capacity:
        Maximum number of entries; the least recently used entry is
        evicted beyond it.
    ttl_seconds:
        Optional time-to-live; an entry older than this at lookup time
        counts as an eviction and a miss.  ``None`` disables expiry.
    name:
        Label for this cache's metric series
        (``repro_cache_hits_total{cache="hash"}``, …).
    decimals:
        Quantization granularity of :func:`query_fingerprint`.
    clock:
        Monotonic time source for TTL bookkeeping; defaults to
        :func:`repro.obs.now`.  Injectable for deterministic tests.
    """

    def __init__(
        self,
        capacity: int = 1024,
        ttl_seconds: float | None = None,
        name: str = "query",
        decimals: int = 12,
        clock: Callable[[], float] | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError(
                f"ttl_seconds must be positive, got {ttl_seconds}"
            )
        self.capacity = capacity
        self.ttl_seconds = ttl_seconds
        self.name = name
        self.decimals = decimals
        self._clock: Callable[[], float] = (
            clock if clock is not None else obs.now
        )
        self._entries: OrderedDict[CacheKey, tuple[float, SearchResult]] = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @staticmethod
    def cacheable(plan: QueryPlan) -> bool:
        """Whether a plan's results are a pure function of its inputs.

        Time-budgeted plans stop retrieval on wall-clock load, so two
        runs of the same query may legitimately differ; caching them
        would pin one arbitrary outcome.
        """
        return plan.time_budget is None

    def key_for(
        self,
        token: str,
        generation: int,
        plan: QueryPlan,
        query: np.ndarray,
        partner_identity: tuple[object, ...] = (),
    ) -> CacheKey:
        """The full cache key for one ``(engine, generation, plan, query)``.

        The plan contributes its complete serialized stage list, so
        every stage parameter — including rerank and fusion configs —
        participates in the key.  ``partner_identity`` folds in the
        fusion partner's engine token and generation for fusion plans;
        a partner mutation then makes prior fused entries unreachable.
        """
        return (
            token,
            generation,
            plan.stage_list(),
            tuple(partner_identity),
            query_fingerprint(query, self.decimals),
        )

    def lookup(self, key: CacheKey) -> SearchResult | None:
        """Return the cached result for ``key``, or ``None`` on a miss."""
        start = obs.now()
        expired = False
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and self.ttl_seconds is not None:
                if self._clock() - entry[0] >= self.ttl_seconds:
                    del self._entries[key]
                    self._evictions += 1
                    expired = True
                    entry = None
            if entry is None:
                self._misses += 1
            else:
                self._entries.move_to_end(key)
                self._hits += 1
            occupancy = len(self._entries)
        if expired:
            obs.observe_cache_evictions(self.name, 1)
            obs.observe_cache_occupancy(self.name, occupancy)
        if entry is None:
            obs.observe_cache(self.name, hit=False)
            return None
        obs.observe_cache(self.name, hit=True, seconds=obs.now() - start)
        return entry[1]

    def store(self, key: CacheKey, result: SearchResult) -> None:
        """Insert ``result`` under ``key``, evicting LRU entries if full."""
        evicted = 0
        with self._lock:
            self._entries[key] = (self._clock(), result)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                evicted += 1
            self._evictions += evicted
            occupancy = len(self._entries)
        if evicted:
            obs.observe_cache_evictions(self.name, evicted)
        obs.observe_cache_occupancy(self.name, occupancy)

    def invalidate(self) -> int:
        """Drop every entry; returns how many were evicted."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self._evictions += dropped
        if dropped:
            obs.observe_cache_evictions(self.name, dropped)
        obs.observe_cache_occupancy(self.name, 0)
        return dropped

    @property
    def stats(self) -> dict[str, int]:
        """Lifetime hit/miss/eviction counts and current occupancy."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "occupancy": len(self._entries),
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:
        stats = self.stats
        return (
            f"QueryResultCache(name={self.name!r}, "
            f"capacity={self.capacity}, occupancy={stats['occupancy']}, "
            f"hits={stats['hits']}, misses={stats['misses']})"
        )
