"""Extension bench: GQR generality over the *full* hasher zoo.

Section 6.4 demonstrates GQR with ITQ, PCAH and SH; this bench extends
the same comparison to every learner in the package — adding SSH
(label-adjusted covariance), AGH (anchor-graph spectral, non-linear),
AGH with spectral rotation, and KMH (codeword flip costs) — asserting
the generality claim across all of them: on the same hash functions,
GQR's recall at a fixed candidate budget never loses to GHR.

Observed nuance worth recording: AGH's projections are built from only
``s`` non-zero anchor weights, so many |p_i(q)| are near-identical —
QD then carries little extra information over Hamming distance and the
GQR/GHR gap shrinks to ~0 (while staying non-negative within noise).
QD's advantage is proportional to how much *margin signal* the
projection exposes, exactly as the theory predicts.
"""

from repro.core.gqr import GQR
from repro.eval.harness import recall_at_budgets
from repro.eval.reporting import format_table
from repro.hashing import (
    ITQ,
    AnchorGraphHashing,
    KMeansHashing,
    PCAHashing,
    SemiSupervisedHashing,
    SpectralHashing,
    pairs_from_neighbors,
)
from repro.probing import GenerateHammingRanking
from repro.search.searcher import HashIndex
from repro_bench import K, save_report, workload

DATASET = "GIST1M"
BUDGET_POINTS = [200, 800]


def build_hashers(data, m):
    similar, dissimilar = pairs_from_neighbors(
        data, n_anchors=60, n_neighbors=5, seed=0
    )
    return {
        "ITQ": ITQ(code_length=m, seed=0),
        "PCAH": PCAHashing(code_length=m),
        "SH": SpectralHashing(code_length=m),
        "SSH": SemiSupervisedHashing(
            code_length=m, similar_pairs=similar,
            dissimilar_pairs=dissimilar,
        ),
        "AGH": AnchorGraphHashing(code_length=m, n_anchors=4 * m, seed=0),
        "AGH+rot": AnchorGraphHashing(
            code_length=m, n_anchors=4 * m, spectral_rotation=True, seed=0
        ),
        "KMH": KMeansHashing(
            code_length=max(4, m - m % 4), bits_per_subspace=4,
            kmeans_iterations=15, seed=0,
        ),
    }


def test_extended_generality(benchmark):
    dataset, truth = workload(DATASET)
    data = dataset.data
    queries = dataset.queries[:60]
    truth = truth[:60]
    m = dataset.code_length

    results = {}

    def run_all():
        for label, hasher in build_hashers(data, m).items():
            hasher.fit(data)
            gqr = recall_at_budgets(
                HashIndex(hasher, data, prober=GQR()),
                queries, truth, BUDGET_POINTS,
            )
            ghr = recall_at_budgets(
                HashIndex(hasher, data, prober=GenerateHammingRanking()),
                queries, truth, BUDGET_POINTS,
            )
            results[label] = (gqr, ghr)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for label, (gqr, ghr) in results.items():
        for i, budget in enumerate(BUDGET_POINTS):
            rows.append(
                [label, budget, round(gqr[i], 4), round(ghr[i], 4),
                 round(gqr[i] - ghr[i], 4)]
            )
    save_report(
        "extended_generality",
        f"{DATASET}, recall@{K} at item budgets, every hasher:\n"
        + format_table(["hasher", "# items", "GQR", "GHR", "gap"], rows),
    )

    # The generality claim: GQR >= GHR on every hasher at every budget.
    for label, (gqr, ghr) in results.items():
        for g, h in zip(gqr, ghr):
            assert g >= h - 0.02, label
