"""Extension bench: distributed GQR scaling (the paper's future work).

The conclusion plans GQR on data-parallel systems.  Our simulated
cluster shards the SIFT10M stand-in, broadcasts the hash functions and
answers queries scatter-gather.  The series reported: recall and
estimated makespan versus worker count (random sharding), plus the
locality-routing trade-off (cluster sharding with partial fan-out).
"""

import numpy as np

from repro.distributed import DistributedHashIndex, NetworkModel
from repro.eval.reporting import format_table
from repro_bench import K, fitted_hasher, save_report, workload

DATASET = "SIFT10M"
BUDGET = 2000


def _run(index, queries, truth, fanout=None):
    hits = 0
    makespans = []
    for query, truth_row in zip(queries, truth):
        result = index.search(query, k=K, n_candidates=BUDGET, fanout=fanout)
        hits += len(np.intersect1d(result.ids, truth_row))
        makespans.append(result.extras["makespan_seconds"])
    return hits / (K * len(queries)), float(np.mean(makespans))


def test_distributed_scaling(benchmark):
    dataset, truth = workload(DATASET)
    hasher = fitted_hasher(DATASET, "itq")
    network = NetworkModel(latency_seconds=0.5e-3)
    queries = dataset.queries[:40]
    truth = truth[: len(queries)]

    scaling_rows = []
    routing_rows = []

    def run_all():
        for workers in (1, 2, 4, 8):
            index = DistributedHashIndex(
                hasher, dataset.data, num_workers=workers, seed=0,
                network=network,
            )
            recall, makespan = _run(index, queries, truth)
            scaling_rows.append(
                [workers, round(recall, 4), round(1000 * makespan, 3)]
            )
        clustered = DistributedHashIndex(
            hasher, dataset.data, num_workers=8, partitioning="cluster",
            seed=0, network=network,
        )
        for fanout in (8, 4, 2):
            recall, makespan = _run(clustered, queries, truth, fanout)
            routing_rows.append(
                [fanout, round(recall, 4), round(1000 * makespan, 3)]
            )

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    save_report(
        "distributed_scaling",
        "random sharding (full fan-out):\n"
        + format_table(["workers", "recall", "makespan ms"], scaling_rows)
        + "\n\ncluster sharding, 8 workers, routed fan-out:\n"
        + format_table(["fan-out", "recall", "makespan ms"], routing_rows),
    )

    # Sharding must not destroy recall (same total candidate budget).
    single = scaling_rows[0][1]
    for row in scaling_rows[1:]:
        assert row[1] >= single - 0.08
    # Routing to half the cluster keeps most of the recall.
    full = routing_rows[0][1]
    assert routing_rows[1][1] >= full - 0.15
