"""Figure 11: speedup over HR for various k (number of target neighbours).

Paper (TINY5M, SIFT10M): GQR is significantly faster than HR and GHR at
90% recall for k in {1, 10, 50, 100}, with the largest speedups at small
k.  We print the speedup series for both stand-ins.
"""

from repro.core.gqr import GQR
from repro.eval.harness import speedup_at_recall
from repro.eval.reporting import format_table
from repro.probing import GenerateHammingRanking, HammingRanking
from repro.search.searcher import HashIndex
from repro_bench import (
    budget_sweep,
    fitted_hasher,
    save_report,
    timed_sweep,
    workload,
)

DATASETS = ["TINY5M", "SIFT10M"]
KS = [1, 10, 50, 100]
TARGET = 0.90


def test_fig11_speedup_vs_k(benchmark):
    results = {}

    def run_all():
        for name in DATASETS:
            per_k = {}
            for k in KS:
                dataset, truth = workload(name, k)
                hasher = fitted_hasher(name, "itq")
                budgets = budget_sweep(len(dataset.data), top_fraction=0.5)
                curves = {}
                for label, prober in (
                    ("HR", HammingRanking()),
                    ("GHR", GenerateHammingRanking()),
                    ("GQR", GQR()),
                ):
                    index = HashIndex(hasher, dataset.data, prober=prober)
                    curves[label] = timed_sweep(
                        index, dataset.queries, truth, k, budgets
                    )
                per_k[k] = {
                    "GHR": speedup_at_recall(curves["HR"], curves["GHR"], TARGET),
                    "GQR": speedup_at_recall(curves["HR"], curves["GQR"], TARGET),
                }
            results[name] = per_k

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    sections = []
    for name, per_k in results.items():
        rows = [
            [k, round(v["GHR"], 2), round(v["GQR"], 2)]
            for k, v in per_k.items()
        ]
        sections.append(f"--- {name} (speedup over HR at {TARGET:.0%}) ---")
        sections.append(format_table(["k", "GHR", "GQR"], rows))
    save_report("fig11_speedup_k", "\n".join(sections))

    # GQR's speedup over HR beats GHR's for most k on each dataset.
    for name, per_k in results.items():
        wins = sum(1 for v in per_k.values() if v["GQR"] >= v["GHR"] * 0.9)
        assert wins >= len(KS) - 1, name
