"""Table 1: dataset statistics and linear-search time.

Paper: four datasets (CIFAR60K, GIST1M, TINY5M, SIFT10M) with linear
search taking 31s–1978s for 1000 queries.  We report the same columns
for our scaled synthetic stand-ins (plus the paper's originals for
reference) — absolute times shrink with the scale, but linear-scan cost
must grow with dataset cardinality, which is the property the table
motivates hashing with.
"""

import time

from repro.eval.reporting import format_table
from repro.index.linear_scan import LinearScan
from repro_bench import K, MAIN_NAMES, save_report, workload


def test_table1_linear_search(benchmark):
    rows = []
    times = {}
    for name in MAIN_NAMES:
        dataset, _ = workload(name)
        scan = LinearScan(dataset.data)

        def run(scan=scan, dataset=dataset):
            return scan.search(dataset.queries, K)

        if name == MAIN_NAMES[-1]:
            benchmark.pedantic(run, rounds=1, iterations=1)
        start = time.perf_counter()
        run()
        elapsed = time.perf_counter() - start
        times[name] = elapsed
        spec = dataset.spec
        rows.append(
            [
                name,
                spec.paper_dims,
                f"{spec.paper_items:,}",
                spec.scaled_dims,
                f"{spec.scaled_items:,}",
                spec.code_length,
                f"{elapsed:.3f}s",
            ]
        )

    save_report(
        "table1_datasets",
        format_table(
            [
                "Dataset",
                "paper dim",
                "paper items",
                "our dim",
                "our items",
                "m",
                "linear search",
            ],
            rows,
        ),
    )

    # The table's point: exact search cost scales with dataset size.
    ordered = [times[name] for name in MAIN_NAMES]
    assert ordered[0] < ordered[-1]
