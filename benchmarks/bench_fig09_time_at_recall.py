"""Figure 9: querying time at typical recall targets (80/85/90/95%).

Paper: GQR reaches each target 1.6-3x faster than HR/GHR.  We print the
same bar-chart values (seconds per method per target) for the four main
datasets with ITQ.
"""

from bench_fig07_gqr_vs_hr import sweep_three_probers
from repro.eval.harness import time_to_recall
from repro.eval.reporting import format_table
from repro_bench import MAIN_NAMES, save_report

TARGETS = [0.80, 0.85, 0.90, 0.95]


def test_fig09_time_at_typical_recalls(benchmark):
    results = {}

    def run_all():
        for name in MAIN_NAMES:
            results[name] = sweep_three_probers(name)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    sections = []
    wins = 0
    cells = 0
    for name, curves in results.items():
        rows = []
        for target in TARGETS:
            times = {
                label: time_to_recall(curve, target)
                for label, curve in curves.items()
            }
            rows.append(
                [f"{target:.0%}"]
                + [round(times[label], 4) for label in ("HR", "GHR", "GQR")]
            )
            if all(t != float("inf") for t in times.values()):
                cells += 1
                if times["GQR"] <= min(times["HR"], times["GHR"]) * 1.10:
                    wins += 1
        sections.append(f"--- {name} ---")
        sections.append(format_table(["recall", "HR", "GHR", "GQR"], rows))
    save_report("fig09_time_at_recall", "\n".join(sections))

    # GQR is the fastest (within 10% timing tolerance) in the majority
    # of reachable cells.  Wall-clock points here are ~10 ms, so the
    # margin absorbs scheduler noise without weakening the claim — on a
    # quiet machine GQR typically wins ~90% of cells outright.
    assert cells > 0
    assert wins / cells >= 0.55
