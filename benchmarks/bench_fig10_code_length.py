"""Figure 10: effect of code length (time to reach 90% recall).

Paper (TINY5M, SIFT10M): all methods trade retrieval cost against
evaluation cost as m grows — performance improves, then degrades — and
even at GHR/HR's *optimal* code length, GQR still wins.  We sweep m
around each stand-in's default and print time-to-90% per method.
"""

from repro.core.gqr import GQR
from repro.eval.harness import time_to_recall
from repro.eval.reporting import format_table
from repro.probing import GenerateHammingRanking, HammingRanking
from repro.search.searcher import HashIndex
from repro_bench import (
    K,
    budget_sweep,
    fitted_hasher,
    save_report,
    timed_sweep,
    workload,
)

DATASETS = ["TINY5M", "SIFT10M"]
TARGET = 0.90


def test_fig10_code_length_effect(benchmark):
    results = {}

    def run_all():
        for name in DATASETS:
            dataset, truth = workload(name)
            base = dataset.code_length
            per_m = {}
            for m in (base - 3, base, base + 3):
                hasher = fitted_hasher(name, "itq", code_length=m)
                budgets = budget_sweep(len(dataset.data), top_fraction=0.5)
                times = {}
                for label, prober in (
                    ("HR", HammingRanking()),
                    ("GHR", GenerateHammingRanking()),
                    ("GQR", GQR()),
                ):
                    index = HashIndex(hasher, dataset.data, prober=prober)
                    curve = timed_sweep(
                        index, dataset.queries, truth, K, budgets
                    )
                    times[label] = time_to_recall(curve, TARGET)
                per_m[m] = times
            results[name] = per_m

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    sections = []
    for name, per_m in results.items():
        rows = [
            [m, round(t["HR"], 4), round(t["GHR"], 4), round(t["GQR"], 4)]
            for m, t in per_m.items()
        ]
        sections.append(f"--- {name} (seconds to {TARGET:.0%} recall) ---")
        sections.append(format_table(["m", "HR", "GHR", "GQR"], rows))
    save_report("fig10_code_length", "\n".join(sections))

    # Even at GHR's best code length, GQR is at least comparable.
    for name, per_m in results.items():
        best_m = min(per_m, key=lambda m: per_m[m]["GHR"])
        assert per_m[best_m]["GQR"] <= per_m[best_m]["GHR"] * 1.3, name
