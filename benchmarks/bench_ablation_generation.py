"""Ablation: lazy heap generation versus enumerate-and-sort per query.

GQR's generation tree exists so the next-best bucket costs O(log i)
instead of enumerating and sorting all 2^m flipping vectors.  This
ablation replaces the tree with the naive strategy (score every mask,
argsort, walk the order) and compares time at a small probe budget —
the regime the slow-start argument is about.
"""

import time

import numpy as np

from repro.core.generation_tree import FlippingVectorGenerator
from repro.core.quantization_distance import quantization_distances
from repro.eval.reporting import format_table
from repro_bench import fitted_hasher, save_report, workload

N_PROBES = 32


def naive_bucket_order(signature, costs, m):
    """Enumerate all 2^m buckets, score, sort — what GQR avoids."""
    buckets = np.arange(1 << m, dtype=np.int64)
    qds = quantization_distances(signature, buckets, costs)
    order = np.argsort(qds, kind="stable")
    return buckets[order]


def lazy_bucket_order(signature, costs, n_probes):
    permutation = np.argsort(costs, kind="stable")
    sorted_costs = costs[permutation]
    bit_map = [1 << int(p) for p in permutation]
    out = []
    for mask, _ in FlippingVectorGenerator(sorted_costs):
        flip = 0
        remaining = mask
        while remaining:
            low = remaining & -remaining
            flip ^= bit_map[low.bit_length() - 1]
            remaining ^= low
        out.append(signature ^ flip)
        if len(out) >= n_probes:
            break
    return out


def test_ablation_lazy_generation_vs_full_sort(benchmark):
    dataset, _ = workload("SIFT10M")
    hasher = fitted_hasher("SIFT10M", "itq")
    m = dataset.code_length
    probe_infos = [hasher.probe_info(q) for q in dataset.queries]

    def run_lazy():
        for signature, costs in probe_infos:
            lazy_bucket_order(signature, costs, N_PROBES)

    def run_naive():
        for signature, costs in probe_infos:
            naive_bucket_order(signature, costs, m)[:N_PROBES]

    lazy_time = benchmark.pedantic(
        lambda: _timed(run_lazy), rounds=1, iterations=1
    )
    naive_time = _timed(run_naive)

    # Same probe order (up to exact-QD ties).
    signature, costs = probe_infos[0]
    lazy = lazy_bucket_order(signature, costs, N_PROBES)
    naive = naive_bucket_order(signature, costs, m)[:N_PROBES]
    lazy_qd = quantization_distances(signature, np.asarray(lazy), costs)
    naive_qd = quantization_distances(signature, np.asarray(naive), costs)
    assert np.allclose(lazy_qd, naive_qd)

    save_report(
        "ablation_generation",
        format_table(
            ["strategy", f"seconds ({len(probe_infos)} queries, "
             f"{N_PROBES} probes)"],
            [["lazy heap (GQR)", round(lazy_time, 4)],
             ["enumerate+sort 2^m", round(naive_time, 4)]],
        ),
    )

    # At a small budget the lazy generator must win: it touches tens of
    # masks instead of 2^m.
    assert lazy_time < naive_time


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start
