"""Figure 4: Hamming ranking behaviour versus code length.

Paper (CIFAR-10, HR-16/32/64): (a) precision at a given recall improves
with code length — longer codes distinguish buckets better; (b) the
recall-*time* curve worsens with code length — retrieval cost grows.
We sweep HR with three code lengths on the CIFAR60K stand-in and print
both series.
"""

from repro.eval.harness import sweep_budgets
from repro.eval.metrics import precision
from repro.eval.reporting import format_table
from repro.probing import HammingRanking
from repro.search.searcher import HashIndex
from repro_bench import K, budget_sweep, fitted_hasher, save_report, workload

CODE_LENGTHS = [12, 24, 48]  # the paper doubles 16/32/64; 48 < our 63-bit cap


def test_fig04_hr_code_length(benchmark):
    dataset, truth = workload("CIFAR60K")
    budgets = budget_sweep(len(dataset.data), top_fraction=0.5)

    curves = {}

    def run_all():
        for m in CODE_LENGTHS:
            hasher = fitted_hasher("CIFAR60K", "itq", code_length=m)
            index = HashIndex(hasher, dataset.data, prober=HammingRanking())
            curves[m] = sweep_budgets(
                index, dataset.queries, truth, K, budgets
            )

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    # (a) recall-precision pairs: precision = k·recall / items retrieved.
    rows_a = []
    for m, curve in curves.items():
        for p in curve:
            rows_a.append(
                [f"HR-{m}", round(p.recall, 3),
                 round(precision(p.recall * K, p.items), 4)]
            )
    # (b) recall-time pairs.
    rows_b = [
        [f"HR-{m}", round(p.recall, 3), round(p.seconds, 4)]
        for m, curve in curves.items()
        for p in curve
    ]
    save_report(
        "fig04_hr_code_length",
        "Figure 4a (recall, precision):\n"
        + format_table(["method", "recall", "precision"], rows_a)
        + "\n\nFigure 4b (recall, seconds):\n"
        + format_table(["method", "recall", "seconds"], rows_b),
    )

    # Claim (a): at matched mid-range recall, precision grows with m.
    def precision_at(curve, target):
        for p in curve:
            if p.recall >= target:
                return precision(p.recall * K, p.items)
        return 0.0

    target = min(max(c[-1].recall for c in curves.values()) - 0.05, 0.85)
    p_short = precision_at(curves[CODE_LENGTHS[0]], target)
    p_long = precision_at(curves[CODE_LENGTHS[-1]], target)
    assert p_long >= p_short
