"""Figure 6: GQR versus QR (slow start) on the four main datasets.

Paper: both probe identical bucket orders, but QR sorts *all* buckets up
front while GQR generates them on demand, so GQR wins at low budgets and
the gap widens with dataset size (more buckets to sort).  We sweep both
and compare time at the smallest budget.
"""

from repro.core.gqr import GQR
from repro.core.qd_ranking import QDRanking
from repro.eval.reporting import format_curves
from repro.search.searcher import HashIndex
from repro_bench import (
    K,
    MAIN_NAMES,
    budget_sweep,
    fitted_hasher,
    save_report,
    timed_sweep,
    workload,
)


def test_fig06_qr_vs_gqr(benchmark):
    results = {}

    def run_all():
        for name in MAIN_NAMES:
            dataset, truth = workload(name)
            hasher = fitted_hasher(name, "itq")
            budgets = budget_sweep(len(dataset.data))
            curves = {}
            for label, prober in (("GQR", GQR()), ("QR", QDRanking())):
                index = HashIndex(hasher, dataset.data, prober=prober)
                curves[label] = timed_sweep(
                    index, dataset.queries, truth, K, budgets, repeats=2
                )
            results[name] = curves

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    sections = []
    for name, curves in results.items():
        sections.append(f"--- {name} ---")
        sections.append(format_curves(curves))
    save_report("fig06_qr_vs_gqr", "\n".join(sections))

    # Identical probe order => identical recall at every budget.
    for curves in results.values():
        for gqr_point, qr_point in zip(curves["GQR"], curves["QR"]):
            assert abs(gqr_point.recall - qr_point.recall) < 0.03

    # Slow start: at the smallest budget GQR must not be slower than QR
    # on the larger datasets (where the sorted bucket list is big).
    big = MAIN_NAMES[-1]
    assert (
        results[big]["GQR"][0].seconds <= results[big]["QR"][0].seconds * 1.10
    )
