"""Figures 21-22 + Table 3 (appendix): eight additional datasets.

Paper: on DEEP1M, MSONG1M, GLOVE1.2M, GLOVE2.2M (Fig. 21) and AUDIO50K,
NUSWIDE0.26M, UKBENCH1M, IMAGENET2.3M (Fig. 22), ITQ/PCAH + GQR is
comparable with OPQ + IMI in the majority of cases, with no clear
winner in the rest.  Table 3's statistics are printed alongside.
"""

from bench_fig17_opq_imi import build_opq_imi
from repro.core.gqr import GQR
from repro.data.datasets import APPENDIX_DATASETS
from repro.eval.harness import recall_at_budgets
from repro.eval.reporting import format_table
from repro.search.searcher import HashIndex
from repro_bench import budget_sweep, fitted_hasher, save_report, workload

DATASETS = [name for name in APPENDIX_DATASETS if name != "SIFT1M"]


def _report_table3():
    rows = [
        [
            spec.name,
            spec.paper_dims,
            f"{spec.paper_items:,}",
            spec.kind,
            spec.scaled_dims,
            f"{spec.scaled_items:,}",
            spec.code_length,
        ]
        for spec in (APPENDIX_DATASETS[name] for name in DATASETS)
    ]
    assert len(rows) == 8
    save_report(
        "table3_additional_datasets",
        format_table(
            ["Dataset", "paper dim", "paper items", "type",
             "our dim", "our items", "m"],
            rows,
        ),
    )


def test_fig21_22_additional_datasets(benchmark):
    _report_table3()
    results = {}

    def run_all():
        for name in DATASETS:
            dataset, truth = workload(name)
            budgets = budget_sweep(len(dataset.data), n_points=4)
            series = {
                "ITQ+GQR": recall_at_budgets(
                    HashIndex(
                        fitted_hasher(name, "itq"), dataset.data, prober=GQR()
                    ),
                    dataset.queries, truth, budgets,
                ),
                "PCAH+GQR": recall_at_budgets(
                    HashIndex(
                        fitted_hasher(name, "pcah"), dataset.data, prober=GQR()
                    ),
                    dataset.queries, truth, budgets,
                ),
                "OPQ+IMI": recall_at_budgets(
                    build_opq_imi(dataset), dataset.queries, truth, budgets
                ),
            }
            results[name] = (budgets, series)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    sections = []
    comparable = 0
    for name, (budgets, series) in results.items():
        rows = [
            [b] + [round(series[label][i], 4) for label in series]
            for i, b in enumerate(budgets)
        ]
        sections.append(f"--- {name} (recall at item budget) ---")
        sections.append(format_table(["# items"] + list(series), rows))
        mid = len(budgets) // 2
        best_l2h = max(series["ITQ+GQR"][mid], series["PCAH+GQR"][mid])
        if best_l2h >= series["OPQ+IMI"][mid] - 0.10:
            comparable += 1
    save_report("fig21_22_more_datasets", "\n".join(sections))

    # "In the majority of cases GQR boosts ITQ/PCAH to be comparable
    # with OPQ" — require it on most of the eight datasets.
    assert comparable >= 5
