"""Telemetry bench: what does observing a query cost?

Three claims, measured on one synthetic GQR workload:

* telemetry **disabled** (the default) costs nothing measurable — the
  span layer replaced the engine's inline ``perf_counter`` arithmetic
  one-for-one;
* telemetry **enabled** (registry + every-32nd-query sampling) stays
  within a few percent of mean query latency;
* results are **bit-identical** either way.

Rounds interleave the two modes so drift (thermal, cache, GC) hits
both equally, and the reported number is the median across rounds of
the per-round mean latency.  Writes
``benchmarks/results/BENCH_obs_overhead.json`` plus the enabled run's
registry snapshot (``OBS_metrics_snapshot.json`` / ``.prom``) as CI
artifacts.  ``REPRO_BENCH_SMOKE=1`` shrinks the workload for CI and
relaxes the assertion bar (short runs are noise-dominated); the
committed JSON comes from a full local run.
"""

import json
import os
import statistics
import time

import numpy as np

from repro import obs
from repro.core.gqr import GQR
from repro.data import gaussian_mixture, sample_queries
from repro.eval.reporting import format_table
from repro.hashing import ITQ
from repro.search.searcher import HashIndex
from repro_bench import RESULTS_DIR, save_report

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: Full mode mirrors the paper's smallest workload (CIFAR60K-scale);
#: overhead is a constant per-query cost, so it must be judged against
#: a realistic per-query latency, not a toy index.
N_POINTS = 4_000 if SMOKE else 60_000
N_QUERIES = 64 if SMOKE else 256
N_ROUNDS = 3 if SMOKE else 9
K = 10
BUDGET = 400 if SMOKE else 1_000
SAMPLE_EVERY = 32

#: Acceptance bars.  The enabled bar is the PR's ≤3% contract on the
#: median mean-latency ratio (smoke runs are noise-dominated, so CI
#: only sanity-checks).  The disabled bar caps the *worst-case* span
#: cost per query — span machinery is the only work the disabled path
#: does beyond what the pre-telemetry inline arithmetic also did, so
#: ``spans-per-query x cost-per-span`` bounds the disabled overhead
#: from above without needing to resolve ~1% from timing noise.
MAX_ENABLED_OVERHEAD = 0.25 if SMOKE else 0.03
MAX_DISABLED_SPAN_FRACTION = 0.10 if SMOKE else 0.02
SPANS_PER_QUERY = 3  # query + retrieve + evaluate

SPAN_MICROBENCH_ITERS = 10_000 if SMOKE else 100_000


def _mean_latency(index, queries):
    """Mean per-query seconds for one pass over the workload."""
    start = time.perf_counter()
    for query in queries:
        index.search(query, K, BUDGET)
    return (time.perf_counter() - start) / len(queries)


def _span_nanos():
    """Nanoseconds per enter/exit of one (unobserved) span."""
    start = time.perf_counter()
    for _ in range(SPAN_MICROBENCH_ITERS):
        with obs.span("bench"):
            pass
    return (time.perf_counter() - start) / SPAN_MICROBENCH_ITERS * 1e9


def test_obs_overhead(benchmark):
    data = gaussian_mixture(N_POINTS, 32, n_clusters=40,
                            cluster_spread=1.0, seed=0)
    queries = sample_queries(data, N_QUERIES, seed=1)
    index = HashIndex(ITQ(code_length=10, seed=0), data, prober=GQR())
    # Warm every path before measuring.
    _mean_latency(index, queries[:8])
    with obs.telemetry_session():
        _mean_latency(index, queries[:8])

    measurements = {"disabled": [], "enabled": []}
    registry_snapshot = {}

    def measure_enabled():
        sampler = obs.TraceSampler(every_n=SAMPLE_EVERY, seed=0)
        with obs.telemetry_session(sampler=sampler) as telemetry:
            latency = _mean_latency(index, queries)
            registry_snapshot["state"] = telemetry
        return latency

    def run_all():
        # Alternate which mode runs first each round so within-round
        # drift (frequency scaling, cache state) biases neither side.
        for round_index in range(N_ROUNDS):
            if round_index % 2 == 0:
                measurements["disabled"].append(_mean_latency(index, queries))
                measurements["enabled"].append(measure_enabled())
            else:
                measurements["enabled"].append(measure_enabled())
                measurements["disabled"].append(_mean_latency(index, queries))
        return measurements

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    disabled = statistics.median(measurements["disabled"])
    enabled = statistics.median(measurements["enabled"])
    enabled_overhead = enabled / disabled - 1.0
    span_ns = _span_nanos()
    # Upper bound on what the disabled path can cost relative to
    # telemetry-free code: the spans it opens, at measured span cost.
    disabled_span_fraction = SPANS_PER_QUERY * span_ns * 1e-9 / disabled

    # Telemetry must not change results: compare a run in each mode.
    plain = [index.search(q, K, BUDGET) for q in queries[:32]]
    with obs.telemetry_session(
        sampler=obs.TraceSampler(every_n=SAMPLE_EVERY, seed=0)
    ):
        observed = [index.search(q, K, BUDGET) for q in queries[:32]]
    for a, b in zip(plain, observed):
        assert np.array_equal(a.ids, b.ids)
        assert np.array_equal(a.distances, b.distances)

    report = {
        "smoke": SMOKE,
        "n_points": N_POINTS,
        "n_queries": N_QUERIES,
        "n_rounds": N_ROUNDS,
        "k": K,
        "budget": BUDGET,
        "sample_every": SAMPLE_EVERY,
        "disabled_mean_seconds": disabled,
        "enabled_mean_seconds": enabled,
        "enabled_overhead": enabled_overhead,
        "max_enabled_overhead": MAX_ENABLED_OVERHEAD,
        "disabled_span_fraction": disabled_span_fraction,
        "max_disabled_span_fraction": MAX_DISABLED_SPAN_FRACTION,
        "spans_per_query": SPANS_PER_QUERY,
        "span_enter_exit_nanos": span_ns,
        "results_bit_identical": True,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_obs_overhead.json").write_text(
        json.dumps(report, indent=2) + "\n"
    )
    state = registry_snapshot["state"]
    (RESULTS_DIR / "OBS_metrics_snapshot.json").write_text(
        obs.snapshot_json(state.registry) + "\n"
    )
    (RESULTS_DIR / "OBS_metrics_snapshot.prom").write_text(
        obs.to_prometheus_text(state.registry)
    )

    rows = [
        ["telemetry off", f"{disabled * 1e6:.1f}", "-"],
        ["telemetry on", f"{enabled * 1e6:.1f}",
         f"{enabled_overhead * 100:+.2f}%"],
    ]
    save_report(
        "obs_overhead",
        f"{N_QUERIES} queries x {N_ROUNDS} alternating rounds, "
        f"median of per-round means; span enter/exit {span_ns:.0f}ns "
        f"(bounds disabled cost at "
        f"{disabled_span_fraction * 100:.2f}%/query):\n"
        + format_table(["mode", "us/query", "overhead"], rows),
    )

    assert enabled_overhead <= MAX_ENABLED_OVERHEAD
    assert disabled_span_fraction <= MAX_DISABLED_SPAN_FRACTION
