"""Extension bench: per-query latency tails of the querying methods.

The paper's batch curves show mean behaviour; a serving deployment
cares about p95/p99.  Sorting methods (HR, QR) pay their full
sort-everything cost on every query, while generate-to-probe methods'
retrieval cost scales with the number of buckets actually needed — so
the tails tell the slow-start story per query rather than per batch.
"""

from repro.core.gqr import GQR
from repro.core.qd_ranking import QDRanking
from repro.eval.latency import latency_summary, measure_latencies
from repro.eval.reporting import format_table
from repro.probing import GenerateHammingRanking, HammingRanking
from repro.search.searcher import HashIndex
from repro_bench import K, fitted_hasher, save_report, workload

DATASET = "SIFT10M"
BUDGET = 400


def test_latency_tail(benchmark):
    dataset, _ = workload(DATASET)
    hasher = fitted_hasher(DATASET, "itq")
    probers = {
        "HR": HammingRanking(),
        "QR": QDRanking(),
        "GHR": GenerateHammingRanking(),
        "GQR": GQR(),
    }

    summaries = {}

    def run_all():
        for label, prober in probers.items():
            index = HashIndex(hasher, dataset.data, prober=prober)
            latencies = measure_latencies(
                index, dataset.queries, K, BUDGET
            )
            summaries[label] = latency_summary(latencies)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [[label] + summary.row() for label, summary in summaries.items()]
    save_report(
        "latency_tail",
        f"{DATASET}, per-query latency at budget {BUDGET} "
        "(milliseconds):\n"
        + format_table(
            ["prober", "mean", "p50", "p95", "p99", "worst"], rows
        ),
    )

    # Generate-to-probe median must not exceed the sorting methods'.
    assert summaries["GQR"].p50 <= summaries["QR"].p50 * 1.3
    assert summaries["GHR"].p50 <= summaries["HR"].p50 * 1.3
