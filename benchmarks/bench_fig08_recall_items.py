"""Figure 8: recall versus number of retrieved items.

Paper: for the same number of retrieved (evaluated) items, GQR always
finds more true neighbours than GHR/HR — direct evidence that QD sends
evaluation to better buckets.  This is a wall-clock-free claim, so it is
the most robust of the paper's comparisons.
"""

from repro.core.gqr import GQR
from repro.eval.harness import recall_at_budgets
from repro.eval.reporting import format_table
from repro.probing import GenerateHammingRanking
from repro.search.searcher import HashIndex
from repro_bench import (
    MAIN_NAMES,
    budget_sweep,
    fitted_hasher,
    save_report,
    workload,
)


def test_fig08_recall_vs_items(benchmark):
    results = {}

    def run_all():
        for name in MAIN_NAMES:
            dataset, truth = workload(name)
            hasher = fitted_hasher(name, "itq")
            budgets = budget_sweep(len(dataset.data), n_points=8)
            gqr = recall_at_budgets(
                HashIndex(hasher, dataset.data, prober=GQR()),
                dataset.queries, truth, budgets,
            )
            ghr = recall_at_budgets(
                HashIndex(
                    hasher, dataset.data, prober=GenerateHammingRanking()
                ),
                dataset.queries, truth, budgets,
            )
            results[name] = (budgets, gqr, ghr)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    sections = []
    for name, (_budgets, gqr, ghr) in results.items():
        rows = [
            [b, round(g, 4), round(h, 4)]
            for b, g, h in zip(budgets, gqr, ghr)
        ]
        sections.append(f"--- {name} ---")
        sections.append(format_table(["# items", "GQR", "GHR & HR"], rows))
    save_report("fig08_recall_items", "\n".join(sections))

    # GQR >= GHR at every item budget, on every dataset.
    for name, (budgets, gqr, ghr) in results.items():
        for g, h in zip(gqr, ghr):
            assert g >= h - 0.02, name

    # The quality gap widens with dataset size: compare the mid-budget
    # advantage on the smallest vs the largest dataset.
    def mid_gap(entry):
        _, gqr, ghr = entry
        mid = len(gqr) // 2
        return gqr[mid] - ghr[mid]

    assert mid_gap(results[MAIN_NAMES[-1]]) >= mid_gap(results[MAIN_NAMES[0]])
