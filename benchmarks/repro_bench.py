"""Shared machinery for the per-figure/table benchmarks.

Every file in this directory regenerates one table or figure from the
paper.  Conventions:

* heavy artefacts (datasets, ground truth, fitted hashers) are memoised
  here so figures sharing a dataset do not refit;
* each benchmark times its core computation exactly once via
  ``benchmark.pedantic(..., rounds=1, iterations=1)`` — the numbers of
  interest are the *within-figure comparisons*, not re-run statistics;
* each benchmark writes the series the paper plots to
  ``benchmarks/results/<name>.txt`` (and stdout) via :func:`save_report`,
  and asserts the paper's qualitative claim.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.data import Dataset, ground_truth_knn, load_dataset
from repro.eval.harness import CurvePoint
from repro.hashing import ITQ, KMeansHashing, PCAHashing, SpectralHashing

RESULTS_DIR = Path(__file__).parent / "results"

#: Default number of target neighbours, as in the paper.
K = 20

#: Global scale knob for quick runs (REPRO_BENCH_SCALE=0.2 etc.).
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

MAIN_NAMES = ["CIFAR60K", "GIST1M", "TINY5M", "SIFT10M"]

_truth_cache: dict[tuple[str, int], np.ndarray] = {}
_hasher_cache: dict[tuple[str, str, int], object] = {}


def workload(name: str, k: int = K) -> tuple[Dataset, np.ndarray]:
    """Dataset and exact kNN truth for its query batch, memoised."""
    dataset = load_dataset(name, scale=SCALE)
    key = (dataset.name, k)
    if key not in _truth_cache:
        _truth_cache[key] = ground_truth_knn(dataset.queries, dataset.data, k)
    return dataset, _truth_cache[key]


def fitted_hasher(name: str, algo: str, code_length: int | None = None):
    """A fitted hasher for a registered dataset, memoised by (ds, algo, m)."""
    dataset = load_dataset(name, scale=SCALE)
    m = code_length if code_length is not None else dataset.code_length
    key = (dataset.name, algo, m)
    if key not in _hasher_cache:
        if algo == "itq":
            hasher = ITQ(code_length=m, seed=0)
        elif algo == "pcah":
            hasher = PCAHashing(code_length=m)
        elif algo == "sh":
            hasher = SpectralHashing(code_length=m)
        elif algo == "kmh":
            # KMH needs m divisible by the per-subspace bits; round down
            # to the nearest multiple of 4 (b = 4 as in the KMH paper).
            m = max(4, m - m % 4)
            hasher = KMeansHashing(
                code_length=m, bits_per_subspace=4, kmeans_iterations=15, seed=0
            )
        else:
            raise ValueError(f"unknown hasher algo {algo!r}")
        _hasher_cache[key] = hasher.fit(dataset.data)
    return _hasher_cache[key]


def budget_sweep(n_items: int, n_points: int = 6, top_fraction: float = 0.35):
    """Geometric candidate budgets up to ``top_fraction·N``.

    Sweeps stop short of N: the curves' interesting region is recall
    0.3–0.99, which our workloads reach well below a full scan.
    """
    lo = max(20, n_items // 500)
    hi = max(lo + 1, int(n_items * top_fraction))
    return [int(b) for b in np.unique(np.geomspace(lo, hi, n_points).astype(int))]


def timed_sweep(index, queries, truth, k, budgets, repeats: int = 3):
    """Budget sweep with per-point best-of-``repeats`` wall time.

    Recall is deterministic across repeats; timing on ~10 ms points is
    not, so benches whose assertions compare seconds use the minimum —
    the standard way to de-noise micro-timings.
    """
    from repro.eval.harness import CurvePoint, sweep_budgets

    runs = [
        sweep_budgets(index, queries, truth, k, budgets)
        for _ in range(repeats)
    ]
    return [
        CurvePoint(
            budget=points[0].budget,
            seconds=min(p.seconds for p in points),
            recall=points[0].recall,
            items=points[0].items,
            buckets=points[0].buckets,
        )
        for points in zip(*runs)
    ]


def save_report(name: str, text: str) -> None:
    """Write a figure/table report file and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n=== {name} ===\n{text}\n")


def curves_recall_at_items(
    curves: dict[str, list[CurvePoint]], items: float
) -> dict[str, float]:
    """Interpolated recall of each method at a fixed #retrieved items."""
    out = {}
    for method, curve in curves.items():
        xs = [p.items for p in curve]
        ys = [p.recall for p in curve]
        out[method] = float(np.interp(items, xs, ys))
    return out
