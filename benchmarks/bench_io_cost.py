"""Extension bench: retrieval I/O cost (buckets probed at matched recall).

The external-memory LSH literature (LSB-tree, SK-LSH — the paper's
related work) evaluates methods by page accesses, and a bucket fetch is
the natural page unit for hash-table search.  We compare the number of
buckets each querying method must probe to reach fixed recall levels —
a hardware-independent cost measure that complements the wall-clock
curves, and directly shows QD's probe-ordering quality.
"""

import numpy as np

from repro.core.gqr import GQR
from repro.eval.reporting import format_table
from repro.probing import GenerateHammingRanking, PrefixRanking
from repro.search.searcher import HashIndex
from repro_bench import fitted_hasher, save_report, workload

DATASET = "SIFT10M"
TARGETS = [0.5, 0.8, 0.9, 0.95]


def buckets_to_recall(index, queries, truth, targets):
    """Mean #non-empty buckets probed to reach each recall target."""
    per_target = np.zeros(len(targets))
    for query, truth_row in zip(queries, truth):
        truth_set = set(int(t) for t in truth_row)
        found = 0
        buckets = 0
        target_index = 0
        for ids in index.candidate_stream(query):
            buckets += 1
            found += sum(1 for item in ids if int(item) in truth_set)
            while (
                target_index < len(targets)
                and found / len(truth_set) >= targets[target_index]
            ):
                per_target[target_index] += buckets
                target_index += 1
            if target_index == len(targets):
                break
        while target_index < len(targets):  # unreached: full probe count
            per_target[target_index] += buckets
            target_index += 1
    return per_target / len(queries)


def test_io_cost_buckets_at_recall(benchmark):
    dataset, truth = workload(DATASET)
    hasher = fitted_hasher(DATASET, "itq")
    queries = dataset.queries[:60]
    truth = truth[:60]

    probers = {
        "GQR": GQR(),
        "GHR": GenerateHammingRanking(),
        "prefix (SK-LSH-style)": PrefixRanking(),
    }
    results = {}

    def run_all():
        for label, prober in probers.items():
            index = HashIndex(hasher, dataset.data, prober=prober)
            results[label] = buckets_to_recall(index, queries, truth, TARGETS)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        [f"{target:.0%}"]
        + [round(float(results[label][i]), 1) for label in probers]
        for i, target in enumerate(TARGETS)
    ]
    save_report(
        "io_cost",
        f"{DATASET}, mean buckets probed (page I/Os) to reach recall:\n"
        + format_table(["recall"] + list(probers), rows),
    )

    # QD needs the fewest bucket fetches at every target.
    for i in range(len(TARGETS)):
        assert results["GQR"][i] <= results["GHR"][i] * 1.05, TARGETS[i]
        assert (
            results["GQR"][i]
            <= results["prefix (SK-LSH-style)"][i] * 1.05
        ), TARGETS[i]
