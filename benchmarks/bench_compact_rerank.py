"""Extension bench: codes-only re-ranking (compact index).

When raw vectors cannot stay in RAM, candidates must be ranked from
codes alone.  This bench measures the three re-ranking modes on an
unclustered workload (the regime where code-ranking is meaningful):

* exact (full vectors, the ceiling),
* asymmetric QD over long rerank codes (the paper's distance per item),
* symmetric Hamming over the same codes,

across rerank-code lengths, together with each index's memory.  The
expected shape: recall grows with code length, asymmetric ≥ symmetric
(margins break Hamming ties), and memory stays ~an order of magnitude
below the raw vectors.
"""

import numpy as np

from repro.data import correlated_gaussian, ground_truth_knn
from repro.eval.reporting import format_table
from repro.hashing import ITQ
from repro.search.compact_index import CompactHashIndex
from repro.search.searcher import HashIndex
from repro_bench import save_report

N_ITEMS = 6000
DIMS = 48
K = 10
BUDGET = 600


def test_compact_rerank(benchmark):
    data = correlated_gaussian(N_ITEMS, DIMS, correlation=0.5, seed=7)
    queries = data[:60]
    truth = ground_truth_knn(queries, data, K)
    probe = ITQ(code_length=9, seed=0).fit(data)

    def mean_recall(index):
        hits = 0
        for query, truth_row in zip(queries, truth):
            result = index.search(query, K, BUDGET)
            hits += len(np.intersect1d(result.ids, truth_row))
        return hits / (K * len(queries))

    rows = []
    gains = []

    def run_all():
        full = HashIndex(probe, data)
        rows.append(
            ["exact (raw vectors)", "-", round(mean_recall(full), 4),
             f"{data.nbytes / 1e6:.1f} MB"]
        )
        for m_rerank in (12, 24, 48):
            rerank_hasher = ITQ(code_length=m_rerank, seed=1).fit(data)
            asym = CompactHashIndex(probe, rerank_hasher, data)
            sym = CompactHashIndex(
                probe, rerank_hasher, data, rerank="symmetric"
            )
            asym_recall = mean_recall(asym)
            sym_recall = mean_recall(sym)
            gains.append(asym_recall - sym_recall)
            rows.append(
                [f"asymmetric QD, {m_rerank}b", m_rerank,
                 round(asym_recall, 4),
                 f"{asym.memory_bytes() / 1e6:.2f} MB"]
            )
            rows.append(
                [f"symmetric Hamming, {m_rerank}b", m_rerank,
                 round(sym_recall, 4),
                 f"{sym.memory_bytes() / 1e6:.2f} MB"]
            )

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    save_report(
        "compact_rerank",
        f"unclustered {N_ITEMS}x{DIMS}, recall@{K} at {BUDGET} candidates:\n"
        + format_table(["re-ranker", "rerank bits", "recall", "memory"], rows),
    )

    # Recall grows with rerank-code length (asymmetric rows: 1, 3, 5).
    asym_recalls = [rows[1][2], rows[3][2], rows[5][2]]
    assert asym_recalls[2] > asym_recalls[0]
    # Asymmetric never loses to symmetric, and wins somewhere.
    assert all(g >= -0.01 for g in gains)
    assert max(g for g in gains) > 0
    # Memory stays far below raw vectors.
    assert CompactHashIndex(
        probe, ITQ(code_length=48, seed=1).fit(data), data
    ).memory_bytes() < data.nbytes / 4