"""Extension bench: codes-only re-ranking (compact index).

When raw vectors cannot stay in RAM, candidates must be ranked from
codes alone.  This bench measures the three re-ranking modes on an
unclustered workload (the regime where code-ranking is meaningful):

* exact (full vectors, the ceiling),
* asymmetric QD over long rerank codes (the paper's distance per item),
* symmetric Hamming over the same codes,

across rerank-code lengths, together with each index's memory.  The
expected shape: recall grows with code length, asymmetric ≥ symmetric
(margins break Hamming ties), and memory stays ~an order of magnitude
below the raw vectors.

The second bench covers the staged pipeline's rerank/fusion path: a
code-evaluated index answers candidate-only, rerank-exact, rerank-ADC,
and fused plans over the same budget, and the IR metrics (MRR@k,
Recall@k, NDCG@k) for each pipeline go to
``benchmarks/results/BENCH_rerank.json``.  ``REPRO_BENCH_SMOKE=1``
shrinks the workload for CI; the invariant asserted either way is the
PR's acceptance bar — reranking strictly improves Recall@k over the
candidate-only ranking at a matched candidate budget.
"""

import json
import os

import numpy as np

from repro.data import (
    correlated_gaussian,
    gaussian_mixture,
    ground_truth_knn,
    sample_queries,
)
from repro.eval.ir_report import format_ir_report, ir_report
from repro.eval.reporting import format_table
from repro.hashing import ITQ
from repro.quantization.pq import ProductQuantizer
from repro.search.compact_index import CompactHashIndex
from repro.search.searcher import HashIndex
from repro.search.stages import FusionSpec, RerankSpec
from repro_bench import RESULTS_DIR, save_report

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

N_ITEMS = 6000
DIMS = 48
K = 10
BUDGET = 600

PIPE_ITEMS = 2_000 if SMOKE else 8_000
PIPE_QUERIES = 16 if SMOKE else 64
PIPE_BUDGET = 200 if SMOKE else 500


def test_compact_rerank(benchmark):
    data = correlated_gaussian(N_ITEMS, DIMS, correlation=0.5, seed=7)
    queries = data[:60]
    truth = ground_truth_knn(queries, data, K)
    probe = ITQ(code_length=9, seed=0).fit(data)

    def mean_recall(index):
        hits = 0
        for query, truth_row in zip(queries, truth):
            result = index.search(query, K, BUDGET)
            hits += len(np.intersect1d(result.ids, truth_row))
        return hits / (K * len(queries))

    rows = []
    gains = []

    def run_all():
        full = HashIndex(probe, data)
        rows.append(
            ["exact (raw vectors)", "-", round(mean_recall(full), 4),
             f"{data.nbytes / 1e6:.1f} MB"]
        )
        for m_rerank in (12, 24, 48):
            rerank_hasher = ITQ(code_length=m_rerank, seed=1).fit(data)
            asym = CompactHashIndex(probe, rerank_hasher, data)
            sym = CompactHashIndex(
                probe, rerank_hasher, data, rerank="symmetric"
            )
            asym_recall = mean_recall(asym)
            sym_recall = mean_recall(sym)
            gains.append(asym_recall - sym_recall)
            rows.append(
                [f"asymmetric QD, {m_rerank}b", m_rerank,
                 round(asym_recall, 4),
                 f"{asym.memory_bytes() / 1e6:.2f} MB"]
            )
            rows.append(
                [f"symmetric Hamming, {m_rerank}b", m_rerank,
                 round(sym_recall, 4),
                 f"{sym.memory_bytes() / 1e6:.2f} MB"]
            )

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    save_report(
        "compact_rerank",
        f"unclustered {N_ITEMS}x{DIMS}, recall@{K} at {BUDGET} candidates:\n"
        + format_table(["re-ranker", "rerank bits", "recall", "memory"], rows),
    )

    # Recall grows with rerank-code length (asymmetric rows: 1, 3, 5).
    asym_recalls = [rows[1][2], rows[3][2], rows[5][2]]
    assert asym_recalls[2] > asym_recalls[0]
    # Asymmetric never loses to symmetric, and wins somewhere.
    assert all(g >= -0.01 for g in gains)
    assert max(g for g in gains) > 0
    # Memory stays far below raw vectors.
    assert CompactHashIndex(
        probe, ITQ(code_length=48, seed=1).fit(data), data
    ).memory_bytes() < data.nbytes / 4


def test_pipeline_rerank_ir_metrics(benchmark):
    data = gaussian_mixture(
        PIPE_ITEMS, 32, n_clusters=40, cluster_spread=1.0, seed=7
    )
    queries = sample_queries(data, PIPE_QUERIES, seed=8)
    truth = ground_truth_knn(queries, data, K)

    # Code evaluation keeps the candidate-only ranking coarse, so the
    # rerank stages have measurable headroom at the same budget.
    index = HashIndex(
        ITQ(code_length=12, seed=0), data,
        evaluation="code",
        rerank_quantizer=ProductQuantizer(n_subspaces=8, seed=0),
    )
    index.fuse_with(HashIndex(ITQ(code_length=12, seed=7), data))

    plans = {
        "candidate-only": {},
        "rerank-exact": {"rerank": RerankSpec(mode="exact")},
        "rerank-adc": {"rerank": RerankSpec(mode="adc")},
        "fused": {
            "rerank": RerankSpec(mode="exact"),
            "fusion": FusionSpec(weight=0.5),
        },
    }
    returned = {name: [] for name in plans}

    def run_all():
        for query in queries:
            for name, extra in plans.items():
                returned[name].append(
                    index.search(
                        query, k=K, n_candidates=PIPE_BUDGET, **extra
                    ).ids
                )

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    report = ir_report(returned, truth, k=K)
    payload = {
        "smoke": SMOKE,
        "n_items": PIPE_ITEMS,
        "n_queries": PIPE_QUERIES,
        "k": K,
        "budget": PIPE_BUDGET,
        "pipelines": report,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_rerank.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    save_report(
        "pipeline_rerank",
        f"staged pipelines, {PIPE_ITEMS}x32, k={K}, "
        f"budget={PIPE_BUDGET}:\n" + format_ir_report(report),
    )

    # The PR's acceptance bar: at a matched candidate budget, exact
    # reranking strictly beats the candidate-only (code-distance)
    # ranking on Recall@k, and fusion never falls below candidate-only.
    recall_key = f"recall@{K}"
    assert report["rerank-exact"][recall_key] > (
        report["candidate-only"][recall_key]
    )
    assert report["fused"][recall_key] >= (
        report["candidate-only"][recall_key]
    )
