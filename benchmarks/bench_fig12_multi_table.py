"""Figure 12: single-table GQR versus multi-table GHR.

Paper (TINY5M, SIFT10M): GHR needs ~30 hash tables (30x the memory) to
approach single-table GQR's recall-time curve; on TINY5M it never gets
there.  We compare GQR(1 table) against GHR with 1/4/8 tables — fewer
tables than the paper to keep runtime sane, but enough to show the
memory-for-quality trade the figure makes.
"""

from repro.core.gqr import GQR
from repro.eval.harness import recall_at_budgets
from repro.eval.reporting import format_table
from repro.hashing import ITQ
from repro.probing import GenerateHammingRanking
from repro.search.searcher import HashIndex
from repro_bench import budget_sweep, fitted_hasher, save_report, workload

DATASETS = ["TINY5M", "SIFT10M"]
TABLE_COUNTS = [1, 4, 8]


def test_fig12_multi_table_ghr_vs_single_gqr(benchmark):
    results = {}

    def run_all():
        for name in DATASETS:
            dataset, truth = workload(name)
            budgets = budget_sweep(len(dataset.data), n_points=5)
            series = {}
            gqr_index = HashIndex(
                fitted_hasher(name, "itq"), dataset.data, prober=GQR()
            )
            series["GQR (1)"] = recall_at_budgets(
                gqr_index, dataset.queries, truth, budgets
            )
            for n_tables in TABLE_COUNTS:
                hashers = [
                    ITQ(code_length=dataset.code_length, seed=seed)
                    for seed in range(n_tables)
                ]
                index = HashIndex(
                    hashers, dataset.data, prober=GenerateHammingRanking()
                )
                series[f"GHR ({n_tables})"] = recall_at_budgets(
                    index, dataset.queries, truth, budgets
                )
            results[name] = (budgets, series)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    sections = []
    for name, (budgets, series) in results.items():
        headers = ["# items"] + list(series)
        rows = [
            [b] + [round(series[label][i], 4) for label in series]
            for i, b in enumerate(budgets)
        ]
        sections.append(f"--- {name} (recall at item budget) ---")
        sections.append(format_table(headers, rows))
    save_report("fig12_multi_table", "\n".join(sections))

    for name, (budgets, series) in results.items():
        mid = len(budgets) // 2
        # More GHR tables help GHR...
        assert series["GHR (8)"][mid] >= series["GHR (1)"][mid] - 0.02, name
        # ...but single-table GQR still at least matches 8-table GHR at
        # the same candidate budget (the paper's memory-saving claim).
        assert series["GQR (1)"][mid] >= series["GHR (8)"][mid] - 0.03, name
