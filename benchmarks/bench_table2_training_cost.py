"""Table 2: training cost — OPQ versus PCAH.

Paper: OPQ training costs 3.7x-45x more wall time (and more memory)
than PCAH, which is why "PCAH + GQR matches OPQ + IMI" (Figure 17) is
significant.  We measure wall time and peak traced memory of both
trainers on the four Figure-17 datasets.
"""

import time
import tracemalloc

from bench_fig17_opq_imi import DATASETS, build_opq_imi
from repro.eval.reporting import format_table
from repro.hashing import PCAHashing
from repro_bench import save_report, workload


def _measure(fit):
    tracemalloc.start()
    start = time.perf_counter()
    fit()
    elapsed = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return elapsed, peak / 1e6


def test_table2_training_cost(benchmark):
    rows = []
    ratios = []

    def run_all():
        for name in DATASETS:
            dataset, _ = workload(name)
            opq_time, opq_mem = _measure(lambda ds=dataset: build_opq_imi(ds))
            pcah_time, pcah_mem = _measure(
                lambda ds=dataset: PCAHashing(ds.code_length).fit(ds.data)
            )
            ratios.append(opq_time / pcah_time)
            rows.append(
                [
                    name,
                    round(opq_time, 3),
                    round(pcah_time, 3),
                    round(opq_mem, 1),
                    round(pcah_mem, 1),
                    round(opq_time / pcah_time, 1),
                ]
            )

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    save_report(
        "table2_training_cost",
        format_table(
            [
                "Dataset",
                "OPQ wall (s)",
                "PCAH wall (s)",
                "OPQ peak MB",
                "PCAH peak MB",
                "OPQ/PCAH time",
            ],
            rows,
        ),
    )

    # The table's point: OPQ training is substantially more expensive.
    assert all(ratio > 1.5 for ratio in ratios)
