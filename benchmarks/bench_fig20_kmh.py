"""Figure 20 (appendix): GQR versus GHR on K-means hashing.

Paper: KMH quantizes with codewords rather than hyperplanes, so the
appendix defines the flipping cost of bit i as
d(q, c_q') − d(q, c_q); with those costs GQR outperforms GHR (hash
lookup, the original KMH paper's querying method) by a large margin.
SIFT10M is skipped as in the paper (KMH training ran out of memory
there); we use the remaining three stand-ins.
"""

from repro.core.gqr import GQR
from repro.eval.harness import recall_at_budgets
from repro.eval.reporting import format_table
from repro.probing import GenerateHammingRanking
from repro.search.searcher import HashIndex
from repro_bench import budget_sweep, fitted_hasher, save_report, workload

DATASETS = ["CIFAR60K", "GIST1M", "TINY5M"]


def test_fig20_kmh_gqr_vs_ghr(benchmark):
    results = {}

    def run_all():
        for name in DATASETS:
            dataset, truth = workload(name)
            hasher = fitted_hasher(name, "kmh")
            budgets = budget_sweep(len(dataset.data), n_points=5)
            results[name] = (
                budgets,
                {
                    "GQR": recall_at_budgets(
                        HashIndex(hasher, dataset.data, prober=GQR()),
                        dataset.queries, truth, budgets,
                    ),
                    "GHR": recall_at_budgets(
                        HashIndex(
                            hasher,
                            dataset.data,
                            prober=GenerateHammingRanking(),
                        ),
                        dataset.queries, truth, budgets,
                    ),
                },
            )

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    sections = []
    for name, (_budgets, series) in results.items():
        rows = [
            [b, round(series["GQR"][i], 4), round(series["GHR"][i], 4)]
            for i, b in enumerate(budgets)
        ]
        sections.append(f"--- {name} (recall at item budget, KMH) ---")
        sections.append(format_table(["# items", "GQR", "GHR"], rows))
    save_report("fig20_kmh", "\n".join(sections))

    for name, (budgets, series) in results.items():
        for g, h in zip(series["GQR"], series["GHR"]):
            assert g >= h - 0.02, name
