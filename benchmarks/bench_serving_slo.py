"""Serving front-door bench: SLO compliance through a 10x flash crowd.

The ISSUE-level serving contract, measured on one seeded flash-crowd
trace driven through the front door's decision core in virtual time:

* the front door never raises — every offered request resolves to
  exactly one served / served_degraded / rejected response, and the
  status counts partition the trace;
* the interactive lane's achieved p99 stays within its declared SLO
  even while the crowd offers several times the serial capacity;
* goodput through the crowd window stays at or above 80% of serial
  capacity — graduated degradation buys throughput instead of
  collapsing into queueing;
* the emitted SLO report validates against its schema, so the CI
  artifact is machine-checkable.

Writes ``benchmarks/results/BENCH_serving_slo.json``.
``REPRO_BENCH_SMOKE=1`` shrinks the corpus and trace for CI; the
committed JSON comes from a full local run.
"""

import json
import os

from repro.core.gqr import GQR
from repro.data import gaussian_mixture, sample_queries
from repro.data.workloads import FlashCrowd, traffic_trace
from repro.hashing import ITQ
from repro.search import HashIndex
from repro.serving import (
    STATUSES,
    ServingSimulator,
    default_config,
    format_slo_report,
    slo_report,
    validate_slo_report,
)
from repro_bench import RESULTS_DIR, save_report

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

N_POINTS = 2_000 if SMOKE else 20_000
N_DISTINCT = 32 if SMOKE else 128      # distinct queries in the stream
DURATION = 3.0 if SMOKE else 8.0       # virtual seconds of traffic
BASE_RATE = 250.0 if SMOKE else 300.0  # calm-period arrivals per second
CROWD = (
    FlashCrowd(start=1.0, duration=1.0, multiplier=10.0)
    if SMOKE
    else FlashCrowd(start=2.5, duration=3.0, multiplier=10.0)
)
K = 10
BUDGET = 100 if SMOKE else 200
#: Virtual serial capacity: 800 full-fidelity queries per second.
PER_QUERY_COST = 1.25e-3
CAPACITY_QPS = 1.0 / PER_QUERY_COST
SEED = 7

MIN_GOODPUT_FRACTION = 0.8


def test_serving_slo(benchmark):
    data = gaussian_mixture(N_POINTS, 32, n_clusters=40,
                            cluster_spread=1.0, seed=0)
    queries = sample_queries(data, N_DISTINCT, seed=1)
    index = HashIndex(ITQ(code_length=10, seed=0), data, prober=GQR())
    plan = index.plan(k=K, n_candidates=BUDGET)
    trace = traffic_trace(
        duration=DURATION, base_rate=BASE_RATE, n_distinct=N_DISTINCT,
        seed=SEED, flash_crowds=(CROWD,),
    )
    # The crowd must genuinely overload, or the claims hold vacuously.
    offered = trace.offered_rate(CROWD.start, CROWD.start + CROWD.duration)
    assert offered > 2 * CAPACITY_QPS

    measured = {}

    def run():
        simulator = ServingSimulator(index, per_query_cost=PER_QUERY_COST)
        measured["sim"] = simulator.run_open(trace, queries, plan)
        return measured["sim"]

    benchmark.pedantic(run, rounds=1, iterations=1)
    sim = measured["sim"]

    # Never raises: every request resolved to exactly one known status.
    statuses = sim.by_status()
    assert sum(statuses.values()) == len(trace)
    assert set(statuses) <= set(STATUSES)

    report = slo_report(
        sim, serial_capacity_qps=CAPACITY_QPS, flash_crowds=(CROWD,)
    )
    validate_slo_report(report)
    report["smoke"] = SMOKE
    report["trace"] = {
        "n_points": N_POINTS,
        "n_distinct_queries": N_DISTINCT,
        "duration_seconds": DURATION,
        "base_rate_qps": BASE_RATE,
        "crowd_multiplier": CROWD.multiplier,
        "crowd_offered_qps": offered,
        "k": K,
        "budget": BUDGET,
        "seed": SEED,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_serving_slo.json").write_text(
        json.dumps(report, indent=2) + "\n"
    )
    save_report("serving_slo", format_slo_report(report))

    # Interactive p99 within SLO, goodput >= 80% of serial capacity.
    interactive = report["lanes"]["interactive"]
    assert interactive["slo_met"] is True
    assert (
        interactive["achieved"]["p99_ms"] <= interactive["declared"]["p99_ms"]
    )
    (window,) = report["overload"]["windows"]
    assert window["goodput_vs_serial"] >= MIN_GOODPUT_FRACTION
    # Degradation (not collapse) carried the crowd: cheaper plans ran
    # and every shed/reject decision is visible with a reason.
    assert report["served_degraded"] > 0
    assert report["rejected_by_reason"]["shed"] > 0
    slo = default_config().lane("interactive").slo
    assert interactive["declared"]["p99_ms"] == slo.p99_seconds * 1e3
