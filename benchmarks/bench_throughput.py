"""Extension bench: batch throughput (queries per second).

``HashIndex.search_batch`` amortises the projection step across a
batch (one matmul for all queries' codes and flip costs).  This bench
measures QPS of the batched path against the per-query path at a fixed
budget — and checks the results are bit-identical.
"""

import time

import numpy as np

from repro.core.gqr import GQR
from repro.eval.reporting import format_table
from repro.search.searcher import HashIndex
from repro_bench import K, fitted_hasher, save_report, workload

DATASET = "SIFT10M"
BUDGET = 300


def test_batch_throughput(benchmark):
    dataset, _ = workload(DATASET)
    index = HashIndex(
        fitted_hasher(DATASET, "itq"), dataset.data, prober=GQR()
    )
    queries = dataset.queries

    timings = {}

    def run_all():
        # Best-of-3 per path: these are ~15 ms measurements, so a single
        # scheduler hiccup would otherwise dominate the comparison.
        batched_times = []
        looped_times = []
        batched = looped = None
        for _ in range(3):
            start = time.perf_counter()
            batched = index.search_batch(queries, K, BUDGET)
            batched_times.append(time.perf_counter() - start)
            start = time.perf_counter()
            looped = [index.search(q, K, BUDGET) for q in queries]
            looped_times.append(time.perf_counter() - start)
        timings["batched"] = min(batched_times)
        timings["per-query"] = min(looped_times)
        return batched, looped

    batched, looped = benchmark.pedantic(run_all, rounds=1, iterations=1)

    # Identical results.
    for a, b in zip(batched, looped):
        assert np.array_equal(a.ids, b.ids)

    rows = [
        [label, round(seconds, 4),
         round(len(queries) / seconds, 1)]
        for label, seconds in timings.items()
    ]
    save_report(
        "throughput",
        f"{DATASET}, {len(queries)} queries, budget {BUDGET}:\n"
        + format_table(["path", "seconds", "QPS"], rows),
    )

    # Batching must not be slower (it amortises the projections).
    assert timings["batched"] <= timings["per-query"] * 1.15
