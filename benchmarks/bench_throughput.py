"""Extension bench: batch throughput (queries per second).

``HashIndex.search_batch`` runs the whole batch through the query
engine's vectorised fast path: one projection matmul for every query's
code and flip costs, one score matrix over the occupied buckets, one
cumulative-sum drain, and one ragged evaluation pass.  This bench
measures QPS of the batched path against the per-query loop — on the
SIFT10M workload and on a synthetic sparse-table scenario — checks the
results are identical, and writes a machine-readable summary to
``benchmarks/results/BENCH_throughput.json``.
"""

import json
import time

import numpy as np

from repro.core.gqr import GQR
from repro.data import gaussian_mixture, sample_queries
from repro.eval.reporting import format_table
from repro.hashing import ITQ
from repro.search.searcher import HashIndex
from repro_bench import K, RESULTS_DIR, fitted_hasher, save_report, workload

DATASET = "SIFT10M"
BUDGET = 300

#: Synthetic scenario: 10k 32-d points under a 14-bit code — the
#: paper's sparse "long code" regime, where generate-to-probe pays for
#: enumerating mostly-empty code space on every query while the batched
#: path scores only the occupied buckets once.
SYNTH_POINTS = 10_000
SYNTH_DIM = 32
SYNTH_QUERIES = 256
SYNTH_CODE_LENGTH = 14
#: The batched path must beat the per-query loop by at least this
#: factor on the synthetic scenario (PR acceptance bar).
SYNTH_MIN_SPEEDUP = 3.0


def _time_paths(index, queries, k, budget, rounds=3):
    """Best-of-N seconds for the batched and per-query paths."""
    batched_times, looped_times = [], []
    batched = looped = None
    for _ in range(rounds):
        start = time.perf_counter()
        batched = index.search_batch(queries, k, budget)
        batched_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        looped = [index.search(q, k, budget) for q in queries]
        looped_times.append(time.perf_counter() - start)
    return min(batched_times), min(looped_times), batched, looped


def _assert_identical(batched, looped):
    for a, b in zip(batched, looped):
        assert np.array_equal(a.ids, b.ids)
        assert np.allclose(a.distances, b.distances)


def test_batch_throughput(benchmark):
    dataset, _ = workload(DATASET)
    index = HashIndex(
        fitted_hasher(DATASET, "itq"), dataset.data, prober=GQR()
    )
    queries = dataset.queries

    synth_data = gaussian_mixture(
        SYNTH_POINTS, SYNTH_DIM, n_clusters=40, cluster_spread=1.0, seed=0
    )
    synth_queries = sample_queries(synth_data, SYNTH_QUERIES, seed=1)
    synth_index = HashIndex(
        ITQ(code_length=SYNTH_CODE_LENGTH, seed=0), synth_data, prober=GQR()
    )
    # Warm both paths so first-touch costs don't skew best-of-N.
    synth_index.search_batch(synth_queries[:8], K, BUDGET)
    synth_index.search(synth_queries[0], K, BUDGET)

    measurements = {}

    def run_all():
        measurements["main"] = _time_paths(index, queries, K, BUDGET)
        measurements["synthetic"] = _time_paths(
            synth_index, synth_queries, K, BUDGET
        )
        return measurements

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    report = {}
    for scenario, n_queries in (
        ("main", len(queries)), ("synthetic", len(synth_queries)),
    ):
        batch_s, loop_s, batched, looped = measurements[scenario]
        _assert_identical(batched, looped)
        label = DATASET if scenario == "main" else "synthetic-14bit"
        rows.append([f"{label} batched", round(batch_s, 4),
                     round(n_queries / batch_s, 1)])
        rows.append([f"{label} per-query", round(loop_s, 4),
                     round(n_queries / loop_s, 1)])
        report[scenario] = {
            "dataset": label,
            "n_queries": n_queries,
            "k": K,
            "budget": BUDGET,
            "batched_seconds": batch_s,
            "per_query_seconds": loop_s,
            "batched_qps": n_queries / batch_s,
            "per_query_qps": n_queries / loop_s,
            "speedup": loop_s / batch_s,
        }

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_throughput.json").write_text(
        json.dumps(report, indent=2) + "\n"
    )
    save_report(
        "throughput",
        f"budget {BUDGET}, k {K}:\n"
        + format_table(["path", "seconds", "QPS"], rows),
    )

    # Batching must not be slower on the main workload (it amortises
    # the projections) ...
    assert report["main"]["speedup"] >= 1 / 1.15
    # ... and must clear the acceptance bar on the sparse synthetic
    # scenario, where the vectorised engine path replaces per-query
    # generate-to-probe enumeration.
    assert report["synthetic"]["speedup"] >= SYNTH_MIN_SPEEDUP
