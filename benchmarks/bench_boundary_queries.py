"""Extension bench: the boundary-query workload.

The coarse-grain argument of Section 3 predicts *where* GQR's advantage
concentrates: queries whose projections land near quantization
thresholds, because Hamming ranking cannot tell which side of the
boundary to probe first while QD can.  We split an in-distribution
query pool into boundary (smallest margin) and interior (largest
margin) halves and measure the GQR-vs-GHR recall gap on each.
"""

import numpy as np

from repro.core.gqr import GQR
from repro.data.ground_truth import ground_truth_knn
from repro.data.workloads import boundary_margin, in_distribution_queries
from repro.eval.harness import recall_at_budgets
from repro.eval.reporting import format_table
from repro.probing import GenerateHammingRanking
from repro.search.searcher import HashIndex
from repro_bench import K, fitted_hasher, save_report, workload

DATASET = "SIFT10M"
N_QUERIES = 60


def test_boundary_vs_interior_queries(benchmark):
    dataset, _ = workload(DATASET)
    hasher = fitted_hasher(DATASET, "itq")
    data = dataset.data

    pool = in_distribution_queries(data, 4 * N_QUERIES, seed=5)
    margins = boundary_margin(hasher, pool)
    order = np.argsort(margins, kind="stable")
    splits = {
        "boundary": pool[order[:N_QUERIES]],
        "interior": pool[order[-N_QUERIES:]],
    }
    budget = max(100, len(data) // 100)

    gaps = {}
    rows = []

    def run_all():
        for name, queries in splits.items():
            truth = ground_truth_knn(queries, data, K)
            gqr = recall_at_budgets(
                HashIndex(hasher, data, prober=GQR()),
                queries, truth, [budget],
            )[0]
            ghr = recall_at_budgets(
                HashIndex(hasher, data, prober=GenerateHammingRanking()),
                queries, truth, [budget],
            )[0]
            gaps[name] = gqr - ghr
            rows.append([name, round(gqr, 4), round(ghr, 4),
                         round(gqr - ghr, 4)])

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    save_report(
        "boundary_queries",
        f"{DATASET}, recall@{K} at {budget} candidates by query margin:\n"
        + format_table(["workload", "GQR", "GHR", "gap"], rows),
    )

    # The advantage must concentrate on boundary traffic.
    assert gaps["boundary"] > 0
    assert gaps["boundary"] >= gaps["interior"]
