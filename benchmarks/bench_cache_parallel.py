"""Serving-layer bench: result caching + thread-pooled batch execution.

Two claims, measured on one synthetic GQR workload:

* under a skewed (Zipfian) repeated-query stream — the shape of real
  serving traffic — the query-result cache lifts throughput by at
  least 2x, because the popular head of the distribution is answered
  from the LRU instead of re-probed;
* the thread-pooled batch executor's results are **bit-identical** to
  serial execution at every batch size, and its throughput scales with
  batch size when more than one core is available (on a single-core
  runner the curve is still recorded, but no speedup is asserted —
  threads cannot beat serial there).

Writes ``benchmarks/results/BENCH_cache_parallel.json``.
``REPRO_BENCH_SMOKE=1`` shrinks the workload for CI and relaxes the
assertion bars; the committed JSON comes from a full local run.
"""

import json
import os
import time

import numpy as np

from repro.core.gqr import GQR
from repro.data import gaussian_mixture, sample_queries
from repro.data.workloads import zipfian_stream
from repro.eval.reporting import format_table
from repro.hashing import ITQ
from repro.search import HashIndex, ParallelBatchExecutor, QueryResultCache
from repro_bench import RESULTS_DIR, save_report

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

N_POINTS = 4_000 if SMOKE else 60_000
N_DISTINCT = 64 if SMOKE else 512       # distinct queries in the pool
N_REQUESTS = 512 if SMOKE else 8_192    # total requests in the stream
ZIPF_EXPONENT = 1.1                     # rank-frequency skew of the stream
K = 10
BUDGET = 400 if SMOKE else 1_000
N_WORKERS = 4
BATCH_SIZES = (16, 64, 256) if SMOKE else (16, 64, 256, 1024)

MIN_CACHE_SPEEDUP = 1.2 if SMOKE else 2.0
#: Thread speedup is only a contract when the hardware can deliver it.
ASSERT_PARALLEL = os.cpu_count() is not None and os.cpu_count() >= 2
MIN_PARALLEL_SPEEDUP = 1.1


def throughput(index, queries, request_ids):
    start = time.perf_counter()
    for qi in request_ids:
        index.search(queries[qi], K, BUDGET)
    return len(request_ids) / (time.perf_counter() - start)


def test_cache_parallel(benchmark):
    data = gaussian_mixture(N_POINTS, 32, n_clusters=40,
                            cluster_spread=1.0, seed=0)
    queries = sample_queries(data, max(N_DISTINCT, max(BATCH_SIZES)), seed=1)
    hasher = ITQ(code_length=10, seed=0)
    plain = HashIndex(hasher, data, prober=GQR())
    cached = HashIndex(
        hasher, data, prober=GQR(),
        cache=QueryResultCache(capacity=N_DISTINCT, name="bench"),
    )
    parallel = HashIndex(
        hasher, data, prober=GQR(),
        parallel=ParallelBatchExecutor(n_workers=N_WORKERS, min_batch_size=8),
    )
    stream = zipfian_stream(
        N_DISTINCT, N_REQUESTS, exponent=ZIPF_EXPONENT, seed=2
    )

    # Warm every path (and the cache's first-miss pass) before timing.
    warm = stream[:32]
    throughput(plain, queries, warm)
    throughput(cached, queries, warm)
    parallel.search_batch(queries[:16], K, BUDGET)

    measured = {}

    def run_all():
        measured["uncached_qps"] = throughput(plain, queries, stream)
        measured["cached_qps"] = throughput(cached, queries, stream)
        measured["batch"] = []
        for size in BATCH_SIZES:
            block = queries[:size]
            start = time.perf_counter()
            serial_results = plain.search_batch(block, K, BUDGET)
            serial_seconds = time.perf_counter() - start
            start = time.perf_counter()
            parallel_results = parallel.search_batch(block, K, BUDGET)
            parallel_seconds = time.perf_counter() - start
            for a, b in zip(serial_results, parallel_results):
                assert np.array_equal(a.ids, b.ids)
                assert np.array_equal(a.distances, b.distances)
            measured["batch"].append({
                "batch_size": size,
                "serial_qps": size / serial_seconds,
                "parallel_qps": size / parallel_seconds,
                "speedup": serial_seconds / parallel_seconds,
            })
        return measured

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    # The cached stream must return exactly what the plain index does.
    for qi in stream[:64]:
        a = plain.search(queries[qi], K, BUDGET)
        b = cached.search(queries[qi], K, BUDGET)
        assert np.array_equal(a.ids, b.ids)
        assert np.array_equal(a.distances, b.distances)

    cache_speedup = measured["cached_qps"] / measured["uncached_qps"]
    stats = cached.cache.stats
    hit_rate = stats["hits"] / max(1, stats["hits"] + stats["misses"])
    best_parallel = max(row["speedup"] for row in measured["batch"])

    report = {
        "smoke": SMOKE,
        "n_points": N_POINTS,
        "n_distinct_queries": N_DISTINCT,
        "n_requests": N_REQUESTS,
        "zipf_exponent": ZIPF_EXPONENT,
        "k": K,
        "budget": BUDGET,
        "cpu_count": os.cpu_count(),
        "uncached_qps": measured["uncached_qps"],
        "cached_qps": measured["cached_qps"],
        "cache_speedup": cache_speedup,
        "min_cache_speedup": MIN_CACHE_SPEEDUP,
        "cache_hit_rate": hit_rate,
        "cache_stats": stats,
        "n_workers": N_WORKERS,
        "batch_scaling": measured["batch"],
        "best_parallel_speedup": best_parallel,
        "parallel_speedup_asserted": ASSERT_PARALLEL,
        "results_bit_identical": True,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_cache_parallel.json").write_text(
        json.dumps(report, indent=2) + "\n"
    )

    rows = [
        ["uncached", f"{measured['uncached_qps']:.0f}", "-"],
        ["cached", f"{measured['cached_qps']:.0f}",
         f"{cache_speedup:.2f}x"],
    ] + [
        [f"batch={row['batch_size']}",
         f"{row['parallel_qps']:.0f}",
         f"{row['speedup']:.2f}x vs serial"]
        for row in measured["batch"]
    ]
    save_report(
        "cache_parallel",
        f"Zipf(s={ZIPF_EXPONENT}) stream of {N_REQUESTS} requests over "
        f"{N_DISTINCT} distinct queries (hit rate "
        f"{hit_rate * 100:.0f}%); batches on {N_WORKERS} workers, "
        f"{os.cpu_count()} core(s):\n"
        + format_table(["mode", "qps", "speedup"], rows),
    )

    assert cache_speedup >= MIN_CACHE_SPEEDUP
    if ASSERT_PARALLEL and not SMOKE:
        assert best_parallel >= MIN_PARALLEL_SPEEDUP
