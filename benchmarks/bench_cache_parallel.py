"""Serving-layer bench: result caching + pooled batch execution.

Three claims, measured on one synthetic GQR workload:

* under a skewed (Zipfian) repeated-query stream — the shape of real
  serving traffic — the query-result cache lifts throughput by at
  least 2x, because the popular head of the distribution is answered
  from the LRU instead of re-probed;
* both pooled batch modes (threads, and shared-memory processes) give
  results **bit-identical** to serial execution at every batch size —
  checked here and recorded per size as ``bit_identical``;
* on hardware with at least ``N_WORKERS`` cores, the shared-memory
  process mode clears a real speedup floor over serial at every batch
  size, and the speedup is monotone non-decreasing in batch size.

Timing is best-of-``REPEATS`` per (mode, batch size) — one-shot wall
times on ~10 ms regions are noise, and a single lucky/unlucky draw is
exactly the kind of number this bench exists to stop publishing.

The speedup assertion is gated on *actually available* cores
(``os.sched_getaffinity``, not ``os.cpu_count``): a 4-worker pool on a
1-core box cannot beat serial, and asserting — or silently recording
``parallel_speedup_asserted`` next to a 1-core measurement — would be
a lie.  The JSON records the gate (``available_cores``,
``parallel_speedup_asserted``) so a reader can tell an enforced number
from a merely observed one.

Writes ``benchmarks/results/BENCH_cache_parallel.json``.
``REPRO_BENCH_SMOKE=1`` shrinks the workload for CI and relaxes the
assertion bars; the committed JSON comes from a full local run.
"""

import json
import math
import os
import time

import numpy as np

from repro.core.gqr import GQR
from repro.data import gaussian_mixture, sample_queries
from repro.data.workloads import zipfian_stream
from repro.eval.reporting import format_table
from repro.hashing import ITQ
from repro.search import HashIndex, ParallelBatchExecutor, QueryResultCache
from repro_bench import RESULTS_DIR, save_report

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

N_POINTS = 4_000 if SMOKE else 60_000
N_DISTINCT = 64 if SMOKE else 512       # distinct queries in the pool
N_REQUESTS = 512 if SMOKE else 8_192    # total requests in the stream
ZIPF_EXPONENT = 1.1                     # rank-frequency skew of the stream
K = 10
BUDGET = 400 if SMOKE else 1_000
N_WORKERS = 4
MIN_BATCH_SIZE = 16
BATCH_SIZES = (16, 64, 256) if SMOKE else (16, 64, 256, 1024)
REPEATS = 3                             # best-of-N per timed region

MIN_CACHE_SPEEDUP = 1.2 if SMOKE else 2.0


def available_cores() -> int:
    """Cores this process may actually run on, not cores in the box.

    ``os.cpu_count()`` reports the machine; cgroup/affinity limits
    (containers, CI runners, taskset) can pin us to far fewer.  The
    speedup gate must use the real number or it asserts the
    impossible.
    """
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without sched_getaffinity
        return os.cpu_count() or 1


AVAILABLE_CORES = available_cores()
#: The 2x floor is only a contract when the pool can actually get
#: N_WORKERS cores; with 2-3 cores we still require *some* win.
ASSERT_PARALLEL = AVAILABLE_CORES >= N_WORKERS
ASSERT_PARALLEL_RELAXED = 2 <= AVAILABLE_CORES < N_WORKERS
MIN_PARALLEL_SPEEDUP = 1.3 if SMOKE else 2.0
MIN_RELAXED_SPEEDUP = 1.1
#: Successive speedups may dip this fraction below the running best
#: before "monotone non-decreasing" is declared violated.
MONOTONE_TOLERANCE = 0.9


def throughput(index, queries, request_ids):
    start = time.perf_counter()
    for qi in request_ids:
        index.search(queries[qi], K, BUDGET)
    return len(request_ids) / (time.perf_counter() - start)


def best_seconds(fn):
    """Best-of-``REPEATS`` wall time; returns (last result, seconds)."""
    best = math.inf
    result = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def identical(got, want):
    return len(got) == len(want) and all(
        np.array_equal(g.ids, w.ids) and np.array_equal(g.distances, w.distances)
        for g, w in zip(got, want)
    )


def test_cache_parallel(benchmark):
    data = gaussian_mixture(N_POINTS, 32, n_clusters=40,
                            cluster_spread=1.0, seed=0)
    queries = sample_queries(data, max(N_DISTINCT, max(BATCH_SIZES)), seed=1)
    hasher = ITQ(code_length=10, seed=0)
    plain = HashIndex(hasher, data, prober=GQR())
    cached = HashIndex(
        hasher, data, prober=GQR(),
        cache=QueryResultCache(capacity=N_DISTINCT, name="bench"),
    )
    threaded = HashIndex(
        hasher, data, prober=GQR(),
        parallel=ParallelBatchExecutor(
            n_workers=N_WORKERS, min_batch_size=MIN_BATCH_SIZE, mode="thread"
        ),
    )
    process = HashIndex(
        hasher, data, prober=GQR(),
        parallel=ParallelBatchExecutor(
            n_workers=N_WORKERS, min_batch_size=MIN_BATCH_SIZE, mode="process"
        ),
    )
    stream = zipfian_stream(
        N_DISTINCT, N_REQUESTS, exponent=ZIPF_EXPONENT, seed=2
    )

    # Warm every path before timing: the cache's first-miss pass, the
    # thread pool's spawn, and the process mode's worker spawn +
    # shared-memory publication + per-worker attach.
    warm = stream[:32]
    throughput(plain, queries, warm)
    throughput(cached, queries, warm)
    threaded.search_batch(queries[:MIN_BATCH_SIZE], K, BUDGET)
    process.search_batch(queries[:MIN_BATCH_SIZE], K, BUDGET)

    measured = {}

    def run_all():
        measured["uncached_qps"] = throughput(plain, queries, stream)
        measured["cached_qps"] = throughput(cached, queries, stream)
        measured["batch"] = []
        for size in BATCH_SIZES:
            block = queries[:size]
            serial_results, serial_s = best_seconds(
                lambda b=block: plain.search_batch(b, K, BUDGET)
            )
            thread_results, thread_s = best_seconds(
                lambda b=block: threaded.search_batch(b, K, BUDGET)
            )
            process_results, process_s = best_seconds(
                lambda b=block: process.search_batch(b, K, BUDGET)
            )
            measured["batch"].append({
                "batch_size": size,
                "serial_qps": size / serial_s,
                "thread_qps": size / thread_s,
                "process_qps": size / process_s,
                "thread_speedup": serial_s / thread_s,
                "process_speedup": serial_s / process_s,
                "bit_identical": (
                    identical(thread_results, serial_results)
                    and identical(process_results, serial_results)
                ),
            })
        return measured

    try:
        benchmark.pedantic(run_all, rounds=1, iterations=1)

        # The cached stream must return exactly what the plain index does.
        for qi in stream[:64]:
            a = plain.search(queries[qi], K, BUDGET)
            b = cached.search(queries[qi], K, BUDGET)
            assert np.array_equal(a.ids, b.ids)
            assert np.array_equal(a.distances, b.distances)
    finally:
        threaded.close()
        process.close()

    cache_speedup = measured["cached_qps"] / measured["uncached_qps"]
    stats = cached.cache.stats
    hit_rate = stats["hits"] / max(1, stats["hits"] + stats["misses"])
    process_speedups = [row["process_speedup"] for row in measured["batch"]]
    bit_identical = all(row["bit_identical"] for row in measured["batch"])

    report = {
        "smoke": SMOKE,
        "n_points": N_POINTS,
        "n_distinct_queries": N_DISTINCT,
        "n_requests": N_REQUESTS,
        "zipf_exponent": ZIPF_EXPONENT,
        "k": K,
        "budget": BUDGET,
        "cpu_count": os.cpu_count(),
        "available_cores": AVAILABLE_CORES,
        "uncached_qps": measured["uncached_qps"],
        "cached_qps": measured["cached_qps"],
        "cache_speedup": cache_speedup,
        "min_cache_speedup": MIN_CACHE_SPEEDUP,
        "cache_hit_rate": hit_rate,
        "cache_stats": stats,
        "n_workers": N_WORKERS,
        "min_batch_size": MIN_BATCH_SIZE,
        "timing_repeats": REPEATS,
        "batch_scaling": measured["batch"],
        "best_parallel_speedup": max(process_speedups),
        "min_parallel_speedup": MIN_PARALLEL_SPEEDUP,
        "parallel_speedup_asserted": ASSERT_PARALLEL,
        "results_bit_identical": bit_identical,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_cache_parallel.json").write_text(
        json.dumps(report, indent=2) + "\n"
    )

    rows = [
        ["uncached", f"{measured['uncached_qps']:.0f}", "-"],
        ["cached", f"{measured['cached_qps']:.0f}",
         f"{cache_speedup:.2f}x"],
    ] + [
        [f"batch={row['batch_size']}",
         f"{row['process_qps']:.0f}",
         f"{row['process_speedup']:.2f}x process, "
         f"{row['thread_speedup']:.2f}x thread vs serial"]
        for row in measured["batch"]
    ]
    save_report(
        "cache_parallel",
        f"Zipf(s={ZIPF_EXPONENT}) stream of {N_REQUESTS} requests over "
        f"{N_DISTINCT} distinct queries (hit rate "
        f"{hit_rate * 100:.0f}%); batches on {N_WORKERS} workers, "
        f"{AVAILABLE_CORES} available core(s):\n"
        + format_table(["mode", "qps", "speedup"], rows),
    )

    assert bit_identical
    assert cache_speedup >= MIN_CACHE_SPEEDUP
    if ASSERT_PARALLEL:
        for row in measured["batch"]:
            assert row["process_speedup"] >= MIN_PARALLEL_SPEEDUP, (
                f"batch={row['batch_size']}: process speedup "
                f"{row['process_speedup']:.2f}x below the "
                f"{MIN_PARALLEL_SPEEDUP}x floor on {AVAILABLE_CORES} cores"
            )
        if not SMOKE:
            # Monotone non-decreasing in batch size (within timing
            # noise): bigger batches must not scale *worse*.
            best_so_far = process_speedups[0]
            for size, speedup in zip(BATCH_SIZES[1:], process_speedups[1:]):
                assert speedup >= best_so_far * MONOTONE_TOLERANCE, (
                    f"batch={size}: speedup {speedup:.2f}x regressed below "
                    f"{best_so_far:.2f}x seen at a smaller batch"
                )
                best_so_far = max(best_so_far, speedup)
    elif ASSERT_PARALLEL_RELAXED:
        assert max(process_speedups) >= MIN_RELAXED_SPEEDUP
