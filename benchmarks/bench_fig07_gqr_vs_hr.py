"""Figure 7: GQR versus GHR and HR (ITQ hash functions).

Paper: GQR's recall-time curve dominates both Hamming-based methods on
all four datasets, because QD directs probing to better buckets and
generate-to-probe removes the sort-everything start-up cost.
"""

from repro.core.gqr import GQR
from repro.eval.harness import time_to_recall
from repro.eval.plotting import plot_recall_time
from repro.eval.reporting import format_curves, format_table
from repro.probing import GenerateHammingRanking, HammingRanking
from repro.search.searcher import HashIndex
from repro_bench import (
    K,
    MAIN_NAMES,
    budget_sweep,
    fitted_hasher,
    save_report,
    timed_sweep,
    workload,
)

PROBERS = {
    "GQR": GQR,
    "GHR": GenerateHammingRanking,
    "HR": HammingRanking,
}


def sweep_three_probers(name, algo="itq", k=K):
    """Recall-time curves of GQR/GHR/HR on one dataset (shared by the
    PCAH and SH figure benches)."""
    dataset, truth = workload(name, k)
    hasher = fitted_hasher(name, algo)
    budgets = budget_sweep(len(dataset.data))
    curves = {}
    for label, factory in PROBERS.items():
        index = HashIndex(hasher, dataset.data, prober=factory())
        curves[label] = timed_sweep(
            index, dataset.queries, truth, k, budgets, repeats=2
        )
    return curves


def assert_gqr_dominates(results, report_name):
    """Shared qualitative checks + report for Figures 7/13/15."""
    sections = []
    for name, curves in results.items():
        sections.append(f"--- {name} ---")
        sections.append(plot_recall_time(curves))
        sections.append(format_curves(curves))
    save_report(report_name, "\n".join(sections))

    for name, curves in results.items():
        # GQR reaches equal-or-higher recall at every shared budget.
        for gqr_point, ghr_point in zip(curves["GQR"], curves["GHR"]):
            assert gqr_point.recall >= ghr_point.recall - 0.02, name

    # Wall-clock claim on the two largest datasets, where QD's better
    # probe order translates into far fewer evaluated items at 90%
    # recall (the smallest dataset's ~10 ms points are timing noise).
    for name in list(results)[-2:]:
        curves = results[name]
        if curves["GQR"][-1].recall >= 0.9 and curves["GHR"][-1].recall >= 0.9:
            assert time_to_recall(curves["GQR"], 0.9) <= (
                time_to_recall(curves["GHR"], 0.9) * 1.2
            ), name


def test_fig07_gqr_vs_hamming(benchmark):
    results = {}

    def run_all():
        for name in MAIN_NAMES:
            results[name] = sweep_three_probers(name)

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    assert_gqr_dominates(results, "fig07_gqr_vs_hr_itq")

    summary = [
        [
            name,
            round(time_to_recall(curves["HR"], 0.8), 4),
            round(time_to_recall(curves["GHR"], 0.8), 4),
            round(time_to_recall(curves["GQR"], 0.8), 4),
        ]
        for name, curves in results.items()
    ]
    save_report(
        "fig07_summary_time_to_80",
        format_table(["dataset", "HR@80%", "GHR@80%", "GQR@80%"], summary),
    )
