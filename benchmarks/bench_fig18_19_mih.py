"""Figures 18-19 (appendix): GQR versus GHR versus Multi-Index Hashing.

Paper: MIH probes the same Hamming rings as GHR but pays extra
de-duplication/filtering cost, so it performs slightly worse than GHR
at the short code lengths L2H uses — an efficient Hamming-space search
does not fix Hamming distance's coarseness; GQR beats both.  We run
ITQ (Fig. 18) and PCAH (Fig. 19) on two datasets each.
"""

from repro.core.gqr import GQR
from repro.eval.harness import time_to_recall
from repro.eval.reporting import format_curves
from repro.probing import GenerateHammingRanking
from repro.search.searcher import HashIndex, MIHSearchIndex
from repro_bench import (
    K,
    budget_sweep,
    curves_recall_at_items,
    fitted_hasher,
    save_report,
    timed_sweep,
    workload,
)

DATASETS = ["GIST1M", "SIFT10M"]


def _run(algo):
    results = {}
    for name in DATASETS:
        dataset, truth = workload(name)
        hasher = fitted_hasher(name, algo)
        budgets = budget_sweep(len(dataset.data), n_points=5)
        curves = {
            "GQR": timed_sweep(
                HashIndex(hasher, dataset.data, prober=GQR()),
                dataset.queries, truth, K, budgets, repeats=2,
            ),
            "GHR": timed_sweep(
                HashIndex(
                    hasher, dataset.data, prober=GenerateHammingRanking()
                ),
                dataset.queries, truth, K, budgets, repeats=2,
            ),
            "MIH": timed_sweep(
                MIHSearchIndex(hasher, dataset.data, num_blocks=2),
                dataset.queries, truth, K, budgets, repeats=2,
            ),
        }
        results[name] = curves
    return results


def _check_and_report(results, report_name):
    sections = []
    for name, curves in results.items():
        sections.append(f"--- {name} ---")
        sections.append(format_curves(curves))
    save_report(report_name, "\n".join(sections))

    for name, curves in results.items():
        # MIH visits whole Hamming rings, so at matched *items* its
        # candidate quality equals GHR's (same rings, more of them per
        # step)...
        items = curves["GHR"][len(curves["GHR"]) // 2].items
        at_items = curves_recall_at_items(curves, items)
        assert abs(at_items["MIH"] - at_items["GHR"]) < 0.08, name
        # ...while GQR dominates both.
        assert at_items["GQR"] >= at_items["MIH"] - 0.02, name
        # And MIH's de-duplication/filtering makes it no faster than GHR.
        target = 0.9
        if curves["MIH"][-1].recall >= target:
            assert time_to_recall(curves["MIH"], target) >= (
                time_to_recall(curves["GHR"], target) * 0.8
            ), name


def test_fig18_mih_itq(benchmark):
    results = benchmark.pedantic(
        lambda: _run("itq"), rounds=1, iterations=1
    )
    _check_and_report(results, "fig18_mih_itq")


def test_fig19_mih_pcah(benchmark):
    results = benchmark.pedantic(
        lambda: _run("pcah"), rounds=1, iterations=1
    )
    _check_and_report(results, "fig19_mih_pcah")
