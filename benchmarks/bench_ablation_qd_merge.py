"""Ablation: multi-table probe interleaving — round-robin vs QD merge.

The paper's multi-table extension probes tables round-robin.  A bucket
with small QD is good in *any* table, so merging the tables' scored
streams into one globally ascending-QD order should match or beat
strict alternation at a fixed candidate budget.  This ablation measures
the difference (it is usually small — QD scales are comparable across
tables trained on the same data — which is itself worth recording).
"""

from repro.core.gqr import GQR
from repro.eval.harness import recall_at_budgets
from repro.eval.reporting import format_table
from repro.hashing import ITQ
from repro.search.searcher import HashIndex
from repro_bench import budget_sweep, save_report, workload

DATASET = "TINY5M"
N_TABLES = 4


def test_ablation_multi_table_merge(benchmark):
    dataset, truth = workload(DATASET)
    hashers = [
        ITQ(code_length=dataset.code_length, seed=seed).fit(dataset.data)
        for seed in range(N_TABLES)
    ]
    budgets = budget_sweep(len(dataset.data), n_points=5)

    series = {}

    def run_all():
        for strategy in ("round_robin", "qd_merge"):
            index = HashIndex(
                hashers,
                dataset.data,
                prober=GQR(),
                multi_table_strategy=strategy,
            )
            series[strategy] = recall_at_budgets(
                index, dataset.queries, truth, budgets
            )

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        [b, round(series["round_robin"][i], 4), round(series["qd_merge"][i], 4)]
        for i, b in enumerate(budgets)
    ]
    save_report(
        "ablation_qd_merge",
        f"{DATASET}, {N_TABLES} tables, recall at item budget:\n"
        + format_table(["# items", "round robin", "QD merge"], rows),
    )

    # QD merge must never be meaningfully worse than round-robin.
    for rr, merged in zip(series["round_robin"], series["qd_merge"]):
        assert merged >= rr - 0.03
