"""Ablation: Theorem 2 early stop — exact search without a full scan.

Section 4.1 observes that because µ·dist(q, b) lower-bounds the true
distance of every item in bucket b, probing can stop (exactly!) once
the next bucket's bound exceeds the current k-th nearest distance.

The bound's usefulness depends on the data: µ uses the *global*
spectral norm, so pruning kicks in only when true neighbourhoods are
tight relative to the projection scale.  We measure both regimes:

* tight clusters (spread 0.25) — the bound prunes most of the dataset;
* the GIST1M stand-in (spread 1.0) — the bound is too loose to help,
  which we report honestly rather than hide.

Exactness must hold in both.
"""

import time

import numpy as np

from repro.core.gqr import GQR
from repro.data.synthetic import gaussian_mixture, sample_queries
from repro.eval.reporting import format_table
from repro.hashing import ITQ
from repro.index.linear_scan import knn_linear_scan
from repro.search.searcher import HashIndex
from repro_bench import K, fitted_hasher, save_report, workload


def _run_early_stop(index, queries, k):
    start = time.perf_counter()
    results = [index.search_early_stop(q, k=k) for q in queries]
    elapsed = time.perf_counter() - start
    return results, elapsed


def test_ablation_early_stop(benchmark):
    # Tight regime: synthetic clusters where neighbourhoods are narrow.
    tight_data = gaussian_mixture(
        8000, 24, n_clusters=40, cluster_spread=0.25, seed=21
    )
    tight_queries = sample_queries(tight_data, 25, perturbation=0.02, seed=22)
    tight_index = HashIndex(
        ITQ(code_length=10, seed=0), tight_data, prober=GQR()
    )

    tight_results, tight_time = benchmark.pedantic(
        lambda: _run_early_stop(tight_index, tight_queries, K),
        rounds=1,
        iterations=1,
    )
    tight_truth, _ = knn_linear_scan(tight_queries, tight_data, K)

    # Loose regime: the wide-cluster GIST1M stand-in.
    dataset, _ = workload("GIST1M")
    loose_index = HashIndex(
        fitted_hasher("GIST1M", "itq"), dataset.data, prober=GQR()
    )
    loose_queries = dataset.queries[:10]
    loose_results, _ = _run_early_stop(loose_index, loose_queries, K)
    loose_truth, _ = knn_linear_scan(loose_queries, dataset.data, K)

    # Exactness in both regimes — the theorem's guarantee.
    for results, truth in (
        (tight_results, tight_truth),
        (loose_results, loose_truth),
    ):
        for res, truth_row in zip(results, truth):
            assert np.array_equal(np.sort(res.ids), np.sort(truth_row))

    tight_fraction = np.mean(
        [r.n_candidates for r in tight_results]
    ) / len(tight_data)
    loose_fraction = np.mean(
        [r.n_candidates for r in loose_results]
    ) / loose_index.num_items

    save_report(
        "ablation_early_stop",
        format_table(
            ["regime", "exact", "fraction of dataset evaluated"],
            [
                ["tight clusters (spread 0.25)",
                 f"{len(tight_results)}/{len(tight_results)}",
                 f"{tight_fraction:.1%}"],
                ["GIST1M stand-in (spread 1.0)",
                 f"{len(loose_results)}/{len(loose_results)}",
                 f"{loose_fraction:.1%}"],
            ],
        )
        + f"\n(tight-regime batch time: {tight_time:.4f}s)",
    )

    # In the tight regime the bound must prune most of the dataset.
    assert tight_fraction < 0.5
