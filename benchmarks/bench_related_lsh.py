"""Extension bench: GQR versus the related-work LSH query strategies.

Section 7 discusses Multi-Probe LSH, C2LSH and query-aware schemes as
the LSH-side solutions to the same problem QD solves for L2H.  This
bench puts them on one workload: recall at a fixed candidate budget for
ITQ+GQR, ITQ+Multi-Probe-score, QALSH and C2LSH (each with its natural
index).  The paper's claim that "L2H methods outperform LSH methods in
practice" should appear as ITQ-based rows dominating the LSH rows.
"""

from repro.core.gqr import GQR
from repro.eval.harness import time_to_recall
from repro.eval.reporting import format_curves
from repro.index.c2lsh import C2LSH
from repro.index.qalsh import QALSH
from repro.probing import MultiProbeLSH
from repro.search.searcher import HashIndex
from repro.search.stream_index import StreamSearchIndex
from repro_bench import (
    K,
    budget_sweep,
    fitted_hasher,
    save_report,
    timed_sweep,
    workload,
)

DATASET = "GIST1M"


def test_related_lsh_comparison(benchmark):
    dataset, truth = workload(DATASET)
    budgets = budget_sweep(len(dataset.data), n_points=5)
    hasher = fitted_hasher(DATASET, "itq")
    m = dataset.code_length

    indexes = {
        "ITQ+GQR": HashIndex(hasher, dataset.data, prober=GQR()),
        "ITQ+MP-score": HashIndex(
            hasher, dataset.data, prober=MultiProbeLSH()
        ),
        "QALSH": StreamSearchIndex(
            QALSH(
                dataset.data,
                n_projections=2 * m,
                collision_threshold=m,
                seed=0,
            ),
            dataset.data,
        ),
        "C2LSH": StreamSearchIndex(
            C2LSH(
                dataset.data,
                n_projections=2 * m,
                bucket_width=0.5,
                collision_threshold=m,
                seed=0,
            ),
            dataset.data,
        ),
    }

    curves = {}

    def run_all():
        for label, index in indexes.items():
            curves[label] = timed_sweep(
                index, dataset.queries, truth, K, budgets, repeats=2
            )

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    save_report("related_lsh", f"--- {DATASET} ---\n" + format_curves(curves))

    # The paper's premise: learned codes answer queries faster than
    # data-independent LSH in practice.  The collision-counting schemes
    # retrieve precise candidates but pay ~m× the per-query hashing and
    # counting work, so at matched recall GQR is the fastest.
    target = 0.9
    gqr_time = time_to_recall(curves["ITQ+GQR"], target)
    for label in ("QALSH", "C2LSH"):
        assert gqr_time <= time_to_recall(curves[label], target) * 1.1, label
