"""Extension bench: GQR versus its inspiration, Multi-Probe E2LSH.

Section 5.3 lists the differences between GQR and Multi-Probe LSH
(binary vs integer codes, |·| vs squared scores, shared generation
tree, no invalid buckets).  This bench compares the two end to end —
learned binary codes + GQR against p-stable integer codes + the
original perturbation sequence — and attaches a paired bootstrap test
to the recall gap at a fixed candidate budget.
"""

import numpy as np

from repro.core.gqr import GQR
from repro.eval.reporting import format_table
from repro.eval.stats import paired_bootstrap_test
from repro.index.e2lsh import E2LSH
from repro.search.searcher import HashIndex
from repro.search.stream_index import StreamSearchIndex
from repro_bench import K, fitted_hasher, save_report, workload

DATASET = "GIST1M"
BUDGET_FRACTION = 0.02


def test_gqr_vs_multiprobe_e2lsh(benchmark):
    dataset, truth = workload(DATASET)
    data = dataset.data
    budget = max(100, int(len(data) * BUDGET_FRACTION))
    m = dataset.code_length

    per_query = {}

    def run_all():
        indexes = {
            "ITQ+GQR": HashIndex(
                fitted_hasher(DATASET, "itq"), data, prober=GQR()
            ),
            "MultiProbe-E2LSH": StreamSearchIndex(
                E2LSH(
                    data,
                    n_tables=4,
                    n_components=max(4, m // 2),
                    bucket_width=1.0,
                    seed=0,
                ),
                data,
            ),
        }
        for label, index in indexes.items():
            recalls = []
            for query, truth_row in zip(dataset.queries, truth):
                result = index.search(query, K, budget)
                recalls.append(
                    len(np.intersect1d(result.ids, truth_row)) / K
                )
            per_query[label] = np.asarray(recalls)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    test = paired_bootstrap_test(
        per_query["ITQ+GQR"], per_query["MultiProbe-E2LSH"], seed=0
    )
    rows = [
        [label, round(float(recalls.mean()), 4)]
        for label, recalls in per_query.items()
    ]
    save_report(
        "multiprobe_origins",
        f"{DATASET}, recall@{K} at {budget} candidates:\n"
        + format_table(["method", "mean recall"], rows)
        + f"\n\npaired bootstrap (GQR − MultiProbe): "
        f"Δ = {test.mean_difference:+.4f}, "
        f"95% CI [{test.ci[0]:+.4f}, {test.ci[1]:+.4f}], "
        f"p = {test.p_value:.4f}",
    )

    # Learned binary codes + GQR must beat data-independent E2LSH,
    # significantly (the paper's L2H-over-LSH premise).
    assert test.mean_difference > 0
    assert test.significant
