"""Benchmark-suite configuration.

Ensures the benchmark helpers are importable and keeps pytest-benchmark
output grouped per figure.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
