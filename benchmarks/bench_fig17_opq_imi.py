"""Figure 17: PCAH + GQR versus PCAH + GHR versus OPQ + IMI.

Paper: with Hamming ranking there is a large gap between PCAH and the
state-of-the-art vector-quantization pipeline (OPQ + inverted
multi-index); switching PCAH's querying method to GQR closes it —
"a simple querying method produces performance gain equivalent to
advanced learning algorithms".  (SIFT1M replaces SIFT10M as in the
paper, where OPQ ran out of memory.)
"""

import numpy as np

from repro.core.gqr import GQR
from repro.eval.harness import recall_at_budgets
from repro.eval.reporting import format_table
from repro.probing import GenerateHammingRanking
from repro.quantization.opq import OptimizedProductQuantizer
from repro.search.searcher import HashIndex, IMISearchIndex
from repro_bench import budget_sweep, fitted_hasher, save_report, workload

DATASETS = ["CIFAR60K", "GIST1M", "TINY5M", "SIFT1M"]


def build_opq_imi(dataset):
    """OPQ sized so IMI cells hold ~EP items, matching the hash tables."""
    n_centroids = max(8, int(np.sqrt(len(dataset.data) / 10)) + 1)
    opq = OptimizedProductQuantizer(
        n_subspaces=2,
        n_centroids=n_centroids,
        n_iterations=4,
        kmeans_iterations=10,
        seed=0,
    ).fit(dataset.data)
    return IMISearchIndex(opq, dataset.data)


def test_fig17_pcah_gqr_vs_opq_imi(benchmark):
    results = {}

    def run_all():
        for name in DATASETS:
            dataset, truth = workload(name)
            budgets = budget_sweep(len(dataset.data), n_points=5)
            hasher = fitted_hasher(name, "pcah")
            series = {
                "PCAH+GQR": recall_at_budgets(
                    HashIndex(hasher, dataset.data, prober=GQR()),
                    dataset.queries, truth, budgets,
                ),
                "PCAH+GHR": recall_at_budgets(
                    HashIndex(
                        hasher, dataset.data, prober=GenerateHammingRanking()
                    ),
                    dataset.queries, truth, budgets,
                ),
                "OPQ+IMI": recall_at_budgets(
                    build_opq_imi(dataset), dataset.queries, truth, budgets
                ),
            }
            results[name] = (budgets, series)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    sections = []
    for name, (budgets, series) in results.items():
        rows = [
            [b] + [round(series[label][i], 4) for label in series]
            for i, b in enumerate(budgets)
        ]
        sections.append(f"--- {name} (recall at item budget) ---")
        sections.append(format_table(["# items"] + list(series), rows))
    save_report("fig17_opq_imi", "\n".join(sections))

    # NOTE on the expected shape: our synthetic stand-ins are Gaussian
    # mixtures — the best case for k-means codebooks — so OPQ+IMI is
    # stronger here than on the paper's real descriptors.  The paper's
    # transferable claim is that switching PCAH's querying method from
    # GHR to GQR closes most of the gap to the VQ state of the art; we
    # assert that directly (see EXPERIMENTS.md for the discussion).
    for name, (budgets, series) in results.items():
        mid = len(budgets) // 2
        ghr = series["PCAH+GHR"][mid]
        gqr = series["PCAH+GQR"][mid]
        opq = series["OPQ+IMI"][mid]
        assert gqr >= ghr - 0.02, name
        if opq > ghr + 0.02:
            gap_closed = (gqr - ghr) / (opq - ghr)
            assert gap_closed >= 0.4, (name, gap_closed)
        # By the second-to-last budget PCAH+GQR is within 8 recall
        # points of OPQ+IMI ("comparable").
        assert series["PCAH+GQR"][-2] >= series["OPQ+IMI"][-2] - 0.08, name
