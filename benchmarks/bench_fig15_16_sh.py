"""Figures 15-16: GQR versus GHR/HR with spectral hashing.

Paper: GQR's advantage persists under SH's *non-linear* projection —
the strongest generality test, since QD here is computed on sinusoid
eigenfunction values rather than hyperplane margins.
"""

from bench_fig07_gqr_vs_hr import assert_gqr_dominates, sweep_three_probers
from repro.eval.harness import time_to_recall
from repro.eval.reporting import format_table
from repro_bench import MAIN_NAMES, save_report

TARGETS = [0.80, 0.85, 0.90, 0.95]


def test_fig15_16_sh(benchmark):
    results = {}

    def run_all():
        for name in MAIN_NAMES:
            results[name] = sweep_three_probers(name, algo="sh")

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    assert_gqr_dominates(results, "fig15_gqr_vs_hr_sh")

    sections = []
    for name, curves in results.items():
        rows = [
            [f"{t:.0%}"]
            + [
                round(time_to_recall(curves[label], t), 4)
                for label in ("HR", "GHR", "GQR")
            ]
            for t in TARGETS
        ]
        sections.append(f"--- {name} ---")
        sections.append(format_table(["recall", "HR", "GHR", "GQR"], rows))
    save_report("fig16_time_at_recall_sh", "\n".join(sections))
