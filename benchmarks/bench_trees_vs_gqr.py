"""Extension bench: tree-based related work versus GQR.

Two measurements backing Section 7's narrative:

1. **Curse of dimensionality** — the exact k-d tree's pruning collapses
   as dimensionality grows on unclustered data, approaching a full
   scan (why exact trees lose to linear scan beyond ~20 dims, the
   premise for approximate methods).
2. **FLANN-family comparison** — randomized k-d forest and hierarchical
   k-means tree versus ITQ+GQR on the GIST1M stand-in: recall at a
   matched candidate (evaluated-points) budget.
"""

import numpy as np

from repro.core.gqr import GQR
from repro.eval.reporting import format_table
from repro.search.searcher import HashIndex
from repro.trees.kdtree import KDTree
from repro.trees.kmeans_tree import KMeansTree
from repro.trees.randomized_forest import RandomizedKDForest
from repro_bench import K, fitted_hasher, save_report, workload


def test_curse_of_dimensionality(benchmark):
    rng = np.random.default_rng(3)
    rows = []
    visited = {}

    def run_all():
        for d in (2, 4, 8, 16, 32):
            data = rng.standard_normal((4000, d))
            tree = KDTree(data, leaf_size=16)
            total_leaves = 0
            for query in rng.standard_normal((20, d)):
                tree.query(query, K)
                total_leaves += tree.last_nodes_visited
            visited[d] = total_leaves / 20
            rows.append([d, round(visited[d], 1), 4000 // 16])

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    save_report(
        "trees_curse_of_dimensionality",
        "exact k-d tree, 4000 unclustered Gaussian points:\n"
        + format_table(["dims", "mean leaves visited", "total leaves"], rows),
    )

    # Pruning must decay monotonically-ish and collapse at d=32.
    assert visited[32] > 10 * visited[2]
    assert visited[32] > 0.5 * (4000 / 16)  # near-full scan


def test_flann_trees_vs_gqr(benchmark):
    dataset, truth = workload("GIST1M")
    hasher = fitted_hasher("GIST1M", "itq")
    data = dataset.data
    queries = dataset.queries[:50]
    truth = truth[:50]

    results = {}

    def run_all():
        gqr_index = HashIndex(hasher, data, prober=GQR())
        forest = RandomizedKDForest(data, n_trees=4, leaf_size=32, seed=0)
        km_tree = KMeansTree(data, branching=8, leaf_size=32, seed=0)

        def recall_gqr(budget):
            hits = 0
            for query, truth_row in zip(queries, truth):
                res = gqr_index.search(query, K, budget)
                hits += len(np.intersect1d(res.ids, truth_row))
            return hits / (K * len(queries))

        def recall_tree(tree, max_leaves):
            hits = 0
            for query, truth_row in zip(queries, truth):
                ids, _ = tree.query(query, K, max_leaves=max_leaves)
                hits += len(np.intersect1d(ids, truth_row))
            return hits / (K * len(queries))

        # ~32 items/leaf: match budgets to leaves × leaf size.
        for budget, leaves in ((256, 8), (1024, 32), (4096, 128)):
            results[budget] = {
                "ITQ+GQR": recall_gqr(budget),
                "kd-forest": recall_tree(forest, leaves),
                "kmeans-tree": recall_tree(km_tree, leaves),
            }

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        [budget] + [round(v, 4) for v in series.values()]
        for budget, series in results.items()
    ]
    save_report(
        "trees_vs_gqr",
        "GIST1M stand-in, recall at matched evaluated-points budget:\n"
        + format_table(
            ["~items", "ITQ+GQR", "kd-forest", "kmeans-tree"], rows
        ),
    )

    # GQR is competitive with the tree family at every budget.
    for budget, series in results.items():
        best_tree = max(series["kd-forest"], series["kmeans-tree"])
        assert series["ITQ+GQR"] >= best_tree - 0.15, budget
