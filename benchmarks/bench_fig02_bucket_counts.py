"""Figure 2: number of buckets versus Hamming distance.

Paper: with code length m = 20, the count of buckets at Hamming distance
r from a query is C(m, r) — thousands of indistinguishable buckets even
at moderate r, the coarse-grain problem motivating QD.  We print the
C(20, r) series the figure plots plus the *occupied*-bucket histogram of
a real table, and benchmark ring enumeration.
"""

import math

import numpy as np

from repro.eval.reporting import format_table
from repro.index.codes import hamming_distance
from repro.index.hash_table import HashTable
from repro.probing.ghr import hamming_ring_signatures
from repro_bench import fitted_hasher, save_report, workload


def test_fig02_buckets_per_hamming_ring(benchmark):
    m = 20
    theoretical = [math.comb(m, r) for r in range(m + 1)]

    # Empirical occupied-bucket histogram on the SIFT10M stand-in.
    dataset, _ = workload("SIFT10M")
    hasher = fitted_hasher("SIFT10M", "itq")
    table = HashTable(hasher.encode(dataset.data))
    signature, _ = hasher.probe_info(dataset.queries[0])
    buckets = np.fromiter(table.signatures(), dtype=np.int64)
    dists = hamming_distance(buckets, np.int64(signature))
    occupied = np.bincount(dists, minlength=table.code_length + 1)

    def enumerate_rings():
        total = 0
        for r in range(6):
            total += sum(1 for _ in hamming_ring_signatures(0, m, r))
        return total

    enumerated = benchmark.pedantic(enumerate_rings, rounds=1, iterations=1)
    assert enumerated == sum(theoretical[:6])

    rows = [
        [r, theoretical[r],
         int(occupied[r]) if r < len(occupied) else 0]
        for r in range(m + 1)
    ]
    save_report(
        "fig02_bucket_counts",
        format_table(["hamming r", "C(20, r) buckets", "occupied (SIFT10M)"], rows),
    )

    # The figure's point: the ring population explodes combinatorially.
    assert theoretical[10] == 184756
    assert max(theoretical) > 1000 * theoretical[1]
