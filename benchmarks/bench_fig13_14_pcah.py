"""Figures 13-14: GQR versus GHR/HR with PCAH hash functions.

Paper: the same dominance pattern as with ITQ holds when the hash
functions come from plain PCA hashing — evidence that GQR is a general
querying method (Section 6.4).  Figure 14's time-at-recall table is
printed alongside.
"""

from bench_fig07_gqr_vs_hr import assert_gqr_dominates, sweep_three_probers
from repro.eval.harness import time_to_recall
from repro.eval.reporting import format_table
from repro_bench import MAIN_NAMES, save_report

TARGETS = [0.80, 0.85, 0.90, 0.95]


def test_fig13_14_pcah(benchmark):
    results = {}

    def run_all():
        for name in MAIN_NAMES:
            results[name] = sweep_three_probers(name, algo="pcah")

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    assert_gqr_dominates(results, "fig13_gqr_vs_hr_pcah")

    sections = []
    for name, curves in results.items():
        rows = [
            [f"{t:.0%}"]
            + [
                round(time_to_recall(curves[label], t), 4)
                for label in ("HR", "GHR", "GQR")
            ]
            for t in TARGETS
        ]
        sections.append(f"--- {name} ---")
        sections.append(format_table(["recall", "HR", "GHR", "GQR"], rows))
    save_report("fig14_time_at_recall_pcah", "\n".join(sections))
