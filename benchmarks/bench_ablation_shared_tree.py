"""Ablation: shared precomputed generation tree versus per-query tree.

The paper's closing optimisation: the Append/Swap tree's shape is
query-independent, so child masks can be computed once and reused by
all queries.  We compare GQR with and without a shared tree over the
query batch and assert identical probe output.
"""

import time

from repro.core.generation_tree import SharedGenerationTree
from repro.core.gqr import GQR
from repro.eval.reporting import format_table
from repro.index.hash_table import HashTable
from repro_bench import fitted_hasher, save_report, workload

N_PROBES = 256


def _drain(prober, table, probe_infos):
    out = 0
    for signature, costs in probe_infos:
        for i, _ in enumerate(prober.probe(table, signature, costs)):
            out += 1
            if i + 1 >= N_PROBES:
                break
    return out


def test_ablation_shared_generation_tree(benchmark):
    dataset, _ = workload("SIFT10M")
    hasher = fitted_hasher("SIFT10M", "itq")
    table = HashTable(hasher.encode(dataset.data))
    probe_infos = [hasher.probe_info(q) for q in dataset.queries]

    shared_tree = SharedGenerationTree(dataset.code_length)
    shared = GQR(shared_tree=shared_tree)
    plain = GQR()

    # Warm the cache once so the measurement reflects steady state.
    _drain(shared, table, probe_infos[:5])

    def timed(prober):
        start = time.perf_counter()
        _drain(prober, table, probe_infos)
        return time.perf_counter() - start

    shared_time = benchmark.pedantic(
        lambda: timed(shared), rounds=1, iterations=1
    )
    plain_time = timed(plain)

    # Identical probe streams.
    signature, costs = probe_infos[0]
    a = list(plain.probe(table, signature, costs))[:N_PROBES]
    b = list(shared.probe(table, signature, costs))[:N_PROBES]
    assert a == b

    save_report(
        "ablation_shared_tree",
        format_table(
            ["variant", "seconds", "cached nodes"],
            [
                ["per-query tree", round(plain_time, 4), 0],
                ["shared tree", round(shared_time, 4),
                 shared_tree.num_cached_nodes],
            ],
        ),
    )

    # The shared tree must not be a pessimisation (in Python the win is
    # modest; correctness-identical output is the hard requirement).
    assert shared_time <= plain_time * 1.5
