"""Run ``reprolint`` as a module: ``python -m reprolint src tests``."""

from __future__ import annotations

import sys

from reprolint.cli import main

if __name__ == "__main__":
    sys.exit(main())
