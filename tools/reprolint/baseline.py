"""Findings baseline: ratchet new debt to zero without a flag day.

A baseline file records the *accepted* pre-existing findings.  With
``--fail-on-new``, only findings absent from the baseline fail the
run, so a rule can land strict while historical debt is paid down
incrementally (``--write-baseline`` refreshes the file).

Fingerprints are content-based — rule id, path, the offending line's
normalised text, and an occurrence index for identical lines — so
unrelated edits that shift line numbers do not invalidate the
baseline, while editing the flagged line itself surfaces the finding
again for a fresh look.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from pathlib import Path

from reprolint.core import Violation

__all__ = [
    "baseline_fingerprints",
    "filter_new",
    "load_baseline",
    "write_baseline",
]

_FORMAT = "reprolint-baseline/v1"


def _line_text(path: str, line: int, cache: dict[str, list[str]]) -> str:
    lines = cache.get(path)
    if lines is None:
        try:
            lines = Path(path).read_text(encoding="utf-8").splitlines()
        except (OSError, UnicodeDecodeError):
            lines = []
        cache[path] = lines
    if 1 <= line <= len(lines):
        return " ".join(lines[line - 1].split())
    return ""


def baseline_fingerprints(violations: list[Violation]) -> list[str]:
    """Stable content-based fingerprints, aligned with ``violations``.

    Identical (rule, path, line-text) triples get an occurrence index
    in first-seen order, so two copies of the same offending line keep
    distinct, stable fingerprints.
    """
    cache: dict[str, list[str]] = {}
    seen: Counter[tuple[str, str, str]] = Counter()
    fingerprints = []
    for violation in violations:
        text = _line_text(violation.path, violation.line, cache)
        triple = (violation.rule_id, violation.path, text)
        occurrence = seen[triple]
        seen[triple] += 1
        digest = hashlib.blake2b(digest_size=12)
        digest.update(
            "\x1f".join(
                (violation.rule_id, violation.path, text, str(occurrence))
            ).encode()
        )
        fingerprints.append(digest.hexdigest())
    return fingerprints


def load_baseline(path: str | Path) -> set[str]:
    """Fingerprints accepted by the baseline file (empty if missing)."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except FileNotFoundError:
        return set()
    if (
        not isinstance(payload, dict)
        or payload.get("format") != _FORMAT
        or not isinstance(payload.get("entries"), list)
    ):
        raise ValueError(f"{path}: not a {_FORMAT} file")
    return {
        entry["fingerprint"]
        for entry in payload["entries"]
        if isinstance(entry, dict) and "fingerprint" in entry
    }


def write_baseline(path: str | Path, violations: list[Violation]) -> int:
    """Write ``violations`` as the new accepted baseline; returns count."""
    fingerprints = baseline_fingerprints(violations)
    entries = [
        {
            "fingerprint": fingerprint,
            "rule": violation.rule_id,
            "path": violation.path,
            "line": violation.line,
            "message": violation.message,
        }
        for violation, fingerprint in zip(violations, fingerprints)
    ]
    payload = {"format": _FORMAT, "entries": entries}
    Path(path).write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    return len(entries)


def filter_new(
    violations: list[Violation], accepted: set[str]
) -> list[Violation]:
    """Violations whose fingerprint is not in the accepted baseline."""
    fingerprints = baseline_fingerprints(violations)
    return [
        violation
        for violation, fingerprint in zip(violations, fingerprints)
        if fingerprint not in accepted
    ]
