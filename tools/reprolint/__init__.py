"""reprolint — repo-specific static analysis for the repro codebase.

Generic linters check style; ``reprolint`` checks the *architecture and
numeric contracts* this reproduction's correctness rests on: every
search path routed through the query engine, explicit dtypes in hot
paths, ``HashTable`` bucket encapsulation, monotonic timing, and
public-API hygiene.  Since v2 it is a whole-program engine: per-file
rules run in parallel worker processes over a content-hash cache, and
cross-file rules (concurrency discipline, determinism, engine
integrity) query a project-wide symbol table and call graph.  See
``CONTRIBUTING.md`` for the rule catalogue and the paper invariant
each rule protects, and ``DESIGN.md`` §5h for the engine
architecture.

Usage::

    python -m reprolint src tests benchmarks
    python -m reprolint --list-rules
    python -m reprolint --format json src
    python -m reprolint src/repro --fail-on-new   # baseline gate
    python -m reprolint src --format sarif --output report.sarif

Suppress a finding on one line (justify in the commit or a comment)::

    arr = np.asarray(codes)  # reprolint: disable=RL002 -- dtype-polymorphic

A comment-only directive line suppresses the next statement line::

    # reprolint: disable=RL002 -- validated before the cast below
    arr = np.asarray(bits)
"""

from __future__ import annotations

from reprolint.core import (
    ModuleContext,
    Rule,
    Violation,
    all_rules,
    check_paths,
    check_source,
    get_rule,
    register,
)

__version__ = "2.0.0"

__all__ = [
    "ModuleContext",
    "Rule",
    "Violation",
    "__version__",
    "all_rules",
    "check_paths",
    "check_source",
    "get_rule",
    "register",
]
