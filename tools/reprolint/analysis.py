"""Analysis driver: caching, multi-process execution, project rules.

:func:`run_analysis` is the single entry point behind both the CLI and
:func:`reprolint.core.check_paths`.  It runs in two phases:

1. **Per-file phase** — for every ``.py`` file, run the per-file rules
   and extract the :class:`~reprolint.project.ModuleSummary`.  Each
   file's result is a pure function of its bytes, so results are
   cached under a blake2b content hash (plus the analyzer/ruleset
   fingerprint) and cold files can be fanned out to worker processes.
2. **Project phase** — assemble summaries into a
   :class:`~reprolint.project.ProjectIndex` and run every
   :class:`~reprolint.core.ProjectRule` over it, applying per-line
   suppression at each finding's reported site.

Multi-process execution uses the ``fork`` start method when available
(cheap, inherits the loaded rule registry) and falls back to serial
execution on any pool failure — a lint run must never die to an
execution-strategy problem.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import time
from collections.abc import Iterable
from dataclasses import dataclass, field
from pathlib import Path

from reprolint.core import (
    ProjectRule,
    Rule,
    Violation,
    all_rules,
    check_source,
    collect_files,
)
from reprolint.project import (
    SUMMARY_VERSION,
    ModuleSummary,
    ProjectIndex,
    summarize_module,
)

__all__ = ["AnalysisReport", "run_analysis"]

#: Cache layout version, independent of the summary schema version.
_CACHE_VERSION = 1


@dataclass
class AnalysisReport:
    """Outcome of one analysis run."""

    violations: list[Violation]
    files_checked: int
    stats: dict[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class _FileResult:
    path: str
    violations: tuple[Violation, ...]
    summary: ModuleSummary | None
    cache_hit: bool


def _ruleset_fingerprint(rule_ids: tuple[str, ...]) -> str:
    digest = hashlib.blake2b(digest_size=10)
    digest.update(f"cache-v{_CACHE_VERSION}".encode())
    digest.update(f"summary-v{SUMMARY_VERSION}".encode())
    digest.update(",".join(rule_ids).encode())
    return digest.hexdigest()


def _content_key(data: bytes, fingerprint: str) -> str:
    digest = hashlib.blake2b(digest_size=16)
    digest.update(fingerprint.encode())
    digest.update(data)
    return digest.hexdigest()


def _cache_load(cache_dir: Path, key: str) -> _FileResult | None:
    entry = cache_dir / f"{key}.pickle"
    try:
        payload = pickle.loads(entry.read_bytes())
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
        return None
    if not isinstance(payload, _FileResult):
        return None
    return payload


def _cache_store(cache_dir: Path, key: str, result: _FileResult) -> None:
    entry = cache_dir / f"{key}.pickle"
    tmp = entry.with_suffix(f".{os.getpid()}.tmp")
    try:
        cache_dir.mkdir(parents=True, exist_ok=True)
        tmp.write_bytes(pickle.dumps(result))
        tmp.replace(entry)  # atomic on POSIX; concurrent writers agree
    except OSError:
        tmp.unlink(missing_ok=True)


def _analyze_one(
    path_str: str,
    rule_ids: tuple[str, ...],
    cache_dir_str: str | None,
) -> _FileResult:
    """Per-file phase for one file (runs in worker processes too)."""
    from reprolint.core import get_rule

    path = Path(path_str)
    norm = path.as_posix()
    try:
        data = path.read_bytes()
    except OSError as exc:
        return _FileResult(
            path=norm,
            violations=(
                Violation(
                    rule_id="RL000",
                    message=f"unreadable file: {exc}",
                    path=norm,
                    line=1,
                    column=1,
                ),
            ),
            summary=None,
            cache_hit=False,
        )

    cache_dir = Path(cache_dir_str) if cache_dir_str else None
    key = None
    if cache_dir is not None:
        key = _content_key(data, _ruleset_fingerprint(rule_ids))
        cached = _cache_load(cache_dir, key)
        if cached is not None:
            if cached.path == norm:
                return _FileResult(
                    path=norm,
                    violations=cached.violations,
                    summary=cached.summary,
                    cache_hit=True,
                )
            # Same content under a different path (content-addressed
            # cache): re-anchor the violations and rebuild the summary,
            # which embeds paths/module names.
            try:
                summary: ModuleSummary | None = summarize_module(
                    norm, data.decode("utf-8")
                )
            except (SyntaxError, UnicodeDecodeError):
                summary = None
            return _FileResult(
                path=norm,
                violations=tuple(
                    Violation(**{**v.__dict__, "path": norm})
                    for v in cached.violations
                ),
                summary=summary,
                cache_hit=True,
            )

    try:
        source = data.decode("utf-8")
    except UnicodeDecodeError as exc:
        return _FileResult(
            path=norm,
            violations=(
                Violation(
                    rule_id="RL000",
                    message=f"not valid UTF-8: {exc.reason}",
                    path=norm,
                    line=1,
                    column=1,
                ),
            ),
            summary=None,
            cache_hit=False,
        )

    rules = [get_rule(rule_id) for rule_id in rule_ids]
    violations = tuple(check_source(source, norm, rules))
    try:
        summary = summarize_module(norm, source)
    except SyntaxError:
        summary = None  # check_source already reported RL000

    result = _FileResult(
        path=norm, violations=violations, summary=summary, cache_hit=False
    )
    if cache_dir is not None and key is not None:
        _cache_store(cache_dir, key, result)
    return result


def _run_parallel(
    files: list[Path],
    rule_ids: tuple[str, ...],
    cache_dir: str | None,
    jobs: int,
) -> list[_FileResult] | None:
    """Fan the per-file phase out to worker processes; None on failure."""
    import multiprocessing

    try:
        context = multiprocessing.get_context("fork")
    except ValueError:
        return None
    from concurrent.futures import ProcessPoolExecutor

    try:
        with ProcessPoolExecutor(
            max_workers=jobs, mp_context=context
        ) as pool:
            futures = [
                pool.submit(
                    _analyze_one, str(path), rule_ids, cache_dir
                )
                for path in files
            ]
            return [future.result() for future in futures]
    except Exception:  # reprolint: disable=RL005 -- any pool failure (BrokenProcessPool, pickling, rlimits) must fall back to the identical serial path, not kill the lint run
        return None


def run_analysis(
    paths: Iterable[str | Path],
    rules: Iterable[Rule] | None = None,
    jobs: int | None = None,
    cache_dir: str | Path | None = None,
) -> AnalysisReport:
    """Run the full two-phase analysis over ``paths``.

    ``rules`` defaults to every registered rule; per-file and project
    rules are separated automatically.  ``jobs`` of ``None`` picks a
    worker count from the CPU count; ``1`` forces serial execution.
    ``cache_dir`` of ``None`` disables the content-hash cache.
    """
    started = time.perf_counter()
    rule_list = list(all_rules() if rules is None else rules)
    file_rules = [r for r in rule_list if not isinstance(r, ProjectRule)]
    project_rules = [r for r in rule_list if isinstance(r, ProjectRule)]
    file_rule_ids = tuple(sorted(r.rule_id for r in file_rules))
    # Instances whose ids are not in the registry (ad-hoc test rules)
    # cannot be reconstructed in workers or fingerprinted for caching.
    from reprolint.core import _REGISTRY

    shippable = all(
        rule_id in _REGISTRY and isinstance(r, _REGISTRY[rule_id])
        for rule_id, r in zip(
            tuple(r.rule_id for r in file_rules), file_rules
        )
    )
    files = collect_files(paths)

    if jobs is None:
        jobs = min(8, os.cpu_count() or 1)
    cache = str(cache_dir) if (cache_dir is not None and shippable) else None

    results: list[_FileResult] | None = None
    if shippable and jobs > 1 and len(files) > 1:
        results = _run_parallel(files, file_rule_ids, cache, jobs)
    if results is None:
        if shippable:
            results = [
                _analyze_one(str(path), file_rule_ids, cache)
                for path in files
            ]
        else:
            results = []
            for path in files:
                norm = path.as_posix()
                try:
                    source = path.read_text(encoding="utf-8")
                except (OSError, UnicodeDecodeError) as exc:
                    results.append(
                        _FileResult(
                            path=norm,
                            violations=(
                                Violation(
                                    rule_id="RL000",
                                    message=f"unreadable file: {exc}",
                                    path=norm,
                                    line=1,
                                    column=1,
                                ),
                            ),
                            summary=None,
                            cache_hit=False,
                        )
                    )
                    continue
                violations = tuple(check_source(source, norm, file_rules))
                try:
                    summary = summarize_module(norm, source)
                except SyntaxError:
                    summary = None
                results.append(
                    _FileResult(
                        path=norm,
                        violations=violations,
                        summary=summary,
                        cache_hit=False,
                    )
                )

    violations: list[Violation] = []
    summaries: dict[str, ModuleSummary] = {}
    cache_hits = 0
    for result in results:
        violations.extend(result.violations)
        if result.summary is not None:
            summaries[result.path] = result.summary
        if result.cache_hit:
            cache_hits += 1

    if project_rules and summaries:
        project = ProjectIndex(summaries)
        for rule in project_rules:
            for violation in rule.check_project(project):
                silenced = project.suppressed_at(
                    violation.path, violation.line
                )
                if violation.rule_id in silenced:
                    continue
                violations.append(violation)

    violations.sort(key=Violation.sort_key)
    return AnalysisReport(
        violations=violations,
        files_checked=len(files),
        stats={
            "files": len(files),
            "cache_hits": cache_hits,
            "cache_misses": len(files) - cache_hits,
            "jobs": jobs,
            "duration_seconds": round(time.perf_counter() - started, 4),
            "file_rules": len(file_rules),
            "project_rules": len(project_rules),
        },
    )
