"""Built-in rule catalogue.

Importing this package registers every rule with the core registry.
Rules are grouped by the contract they protect:

* :mod:`reprolint.rules.architecture` — RL001 engine bypass, RL003
  bucket encapsulation (the PR-1 engine refactor), RL011 stage-pipeline
  encapsulation (the PR-6 staged execution refactor).
* :mod:`reprolint.rules.numerics` — RL002 implicit dtype, RL004
  wall-clock timing (the paper's numeric/measurement contracts).
* :mod:`reprolint.rules.hygiene` — RL005 broad except, RL007 mutable
  default arguments.
* :mod:`reprolint.rules.api` — RL006 public-API annotations, RL008
  ``__all__`` consistency.
* :mod:`reprolint.rules.observability` — RL009 span timing (the PR-3
  telemetry subsystem).
* :mod:`reprolint.rules.resilience` — RL010 fault-taxonomy routing
  (the PR-4 distributed fault-tolerance layer).
* :mod:`reprolint.rules.concurrency` — RL012 concurrency discipline
  (whole-program: the PR-5 per-child-lock contract on thread-reachable
  paths, plus lock-misuse patterns).
* :mod:`reprolint.rules.determinism` — RL013 determinism (unseeded
  RNG, set-ordered iteration, accumulation-order hazards where
  bit-identity is contractual).
* :mod:`reprolint.rules.wholeprogram` — RL014 cross-module engine
  integrity (call-graph reach into engine/stage internals that
  per-file RL001/RL011 cannot see).
* :mod:`reprolint.rules.serving` — RL015 async-blocking discipline
  (the PR-8 serving front door: no blocking sleeps or direct engine
  execution inside coroutine bodies).
"""

from __future__ import annotations

from reprolint.rules import (
    api,
    architecture,
    concurrency,
    determinism,
    hygiene,
    numerics,
    observability,
    resilience,
    serving,
    wholeprogram,
)

__all__ = [
    "api",
    "architecture",
    "concurrency",
    "determinism",
    "hygiene",
    "numerics",
    "observability",
    "resilience",
    "serving",
    "wholeprogram",
]
