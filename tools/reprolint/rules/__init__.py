"""Built-in rule catalogue.

Importing this package registers every rule with the core registry.
Rules are grouped by the contract they protect:

* :mod:`reprolint.rules.architecture` — RL001 engine bypass, RL003
  bucket encapsulation (the PR-1 engine refactor), RL011 stage-pipeline
  encapsulation (the PR-6 staged execution refactor).
* :mod:`reprolint.rules.numerics` — RL002 implicit dtype, RL004
  wall-clock timing (the paper's numeric/measurement contracts).
* :mod:`reprolint.rules.hygiene` — RL005 broad except, RL007 mutable
  default arguments.
* :mod:`reprolint.rules.api` — RL006 public-API annotations, RL008
  ``__all__`` consistency.
* :mod:`reprolint.rules.observability` — RL009 span timing (the PR-3
  telemetry subsystem).
* :mod:`reprolint.rules.resilience` — RL010 fault-taxonomy routing
  (the PR-4 distributed fault-tolerance layer).
"""

from __future__ import annotations

from reprolint.rules import (
    api,
    architecture,
    hygiene,
    numerics,
    observability,
    resilience,
)

__all__ = [
    "api",
    "architecture",
    "hygiene",
    "numerics",
    "observability",
    "resilience",
]
