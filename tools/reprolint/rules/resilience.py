"""Rules protecting the distributed fault-tolerance contract (PR 4).

The coordinator's whole value is that failures are *classified, never
swallowed*: every shard-level error becomes a ``ShardError`` subclass
that feeds retries, breaker state and the degradation accounting.  A
``except Exception: pass`` in ``repro/distributed`` silently converts a
classified fault into wrong merges — the exact failure mode the fault
taxonomy exists to prevent.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from reprolint.core import ModuleContext, Rule, Violation, register

__all__ = ["FaultTaxonomyRule"]

#: The distributed fault taxonomy: a broad handler may convert into one
#: of these (or re-raise); anything else is swallowing.
_TAXONOMY = (
    "ShardError",
    "ShardCrash",
    "ShardTransientError",
    "ShardTimeout",
    "ShardCorruption",
)

_BROAD = ("Exception", "BaseException")


@register
class FaultTaxonomyRule(Rule):
    """RL010: broad excepts in ``repro/distributed`` must route through
    the fault taxonomy.

    ``except Exception`` / bare ``except`` handlers in the distributed
    package must either re-raise or raise a ``ShardError`` subclass —
    classifying the failure so the coordinator's retry, breaker and
    degradation machinery sees it.  Silent catch-and-continue in the
    coordinator is forbidden.
    """

    rule_id = "RL010"
    name = "fault-taxonomy"
    description = (
        "broad/bare except in repro/distributed must re-raise or raise a "
        "ShardError subclass (classify, never swallow)"
    )

    def applies(self, module: ModuleContext) -> bool:
        return module.within("repro/distributed")

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                if not _routes_through_taxonomy(node):
                    yield self.violation(
                        module,
                        node,
                        "bare except in the distributed layer swallows "
                        "failures; re-raise or raise a ShardError "
                        "subclass so the fault is classified",
                    )
            elif (
                isinstance(node.type, ast.Name)
                and node.type.id in _BROAD
                and not _routes_through_taxonomy(node)
            ):
                yield self.violation(
                    module,
                    node,
                    f"except {node.type.id} in the distributed layer "
                    "must re-raise or raise a ShardError subclass "
                    "(classified faults feed retries, breakers and "
                    "degradation accounting)",
                )


def _routes_through_taxonomy(handler: ast.ExceptHandler) -> bool:
    """Whether the handler re-raises or raises a taxonomy error."""
    for node in ast.walk(handler):
        if not isinstance(node, ast.Raise):
            continue
        if node.exc is None:
            return True  # bare re-raise
        raised = node.exc
        if isinstance(raised, ast.Call):
            raised = raised.func
        if isinstance(raised, ast.Attribute) and raised.attr in _TAXONOMY:
            return True
        if isinstance(raised, ast.Name) and raised.id in _TAXONOMY:
            return True
    return False
