"""Rules protecting the async serving layer (PR 8).

The front door's contract is that the asyncio event loop never blocks:
engine execution is handed to a thread-pool executor and waiting is
done with awaitables, so a single slow search can't freeze admission,
expiry sweeps and every other in-flight request.  A ``time.sleep`` or
a direct ``engine.execute(...)`` / ``index.search(...)`` call inside an
``async def`` silently re-serialises the whole front door — it still
*works* under light load, which is exactly why a linter has to catch
it.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from reprolint.core import ModuleContext, Rule, Violation, register

__all__ = ["AsyncBlockingRule"]

#: The only package where async-coroutine bodies are load-bearing.
_SERVING_DIRS = ("repro/serving",)

#: Method-name prefixes that mean "run the engine, blocking".
_BLOCKING_PREFIXES = ("execute", "search")


@register
class AsyncBlockingRule(Rule):
    """RL015: no blocking calls inside ``async def`` in repro/serving.

    Flags, lexically inside coroutine bodies (nested synchronous
    ``def`` bodies are skipped — they run on whatever thread calls
    them):

    * ``time.sleep(...)`` / bare ``sleep(...)`` — use
      ``await asyncio.sleep(...)``;
    * direct engine/index execution — attribute calls whose name starts
      with ``execute`` or ``search`` (``engine.execute``,
      ``index.search_batch``, …) — hand them to
      ``loop.run_in_executor(...)`` instead.
    """

    rule_id = "RL015"
    name = "async-blocking"
    description = (
        "no blocking calls (time.sleep, engine.execute*/index.search*) "
        "inside async def bodies under repro/serving; await asyncio.sleep "
        "or run the engine in an executor"
    )

    def applies(self, module: ModuleContext) -> bool:
        return module.within(*_SERVING_DIRS)

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._check_coroutine(module, node)

    def _check_coroutine(
        self, module: ModuleContext, coroutine: ast.AsyncFunctionDef
    ) -> Iterator[Violation]:
        """Scan one coroutine body, not descending into sync defs."""
        stack: list[ast.AST] = list(coroutine.body)
        while stack:
            node = stack.pop()
            if isinstance(node, ast.FunctionDef):
                # A nested sync def runs on its caller's thread — if a
                # coroutine calls it directly, the *call* is what this
                # rule should (and does) flag.
                continue
            if isinstance(node, ast.Call):
                finding = self._blocking_call(node)
                if finding is not None:
                    yield self.violation(module, node, finding)
            stack.extend(ast.iter_child_nodes(node))

    def _blocking_call(self, call: ast.Call) -> str | None:
        func = call.func
        if isinstance(func, ast.Attribute):
            if (
                func.attr == "sleep"
                and isinstance(func.value, ast.Name)
                and func.value.id == "time"
            ):
                return (
                    "time.sleep() blocks the event loop; use "
                    "`await asyncio.sleep(...)`"
                )
            if any(
                func.attr.startswith(prefix)
                for prefix in _BLOCKING_PREFIXES
            ):
                return (
                    f"blocking engine call `.{func.attr}(...)` inside a "
                    "coroutine stalls every in-flight request; run it "
                    "via loop.run_in_executor(...)"
                )
        elif isinstance(func, ast.Name) and func.id == "sleep":
            return (
                "sleep() blocks the event loop; use "
                "`await asyncio.sleep(...)`"
            )
        return None
