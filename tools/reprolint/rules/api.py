"""Public-API surface rules: annotations and ``__all__`` consistency.

The mypy gate (see ``pyproject.toml``) enforces typedness on
``repro.index`` / ``repro.core`` / ``repro.search``; RL006 extends the
annotation-completeness contract to every public definition under
``src/repro`` so the API reads uniformly.  RL008 keeps each module's
``__all__`` truthful — stale entries break ``from repro.x import *``
and the registry smoke tests.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from reprolint.core import ModuleContext, Rule, Violation, register

__all__ = ["AnnotationCompletenessRule", "DunderAllConsistencyRule"]


@register
class AnnotationCompletenessRule(Rule):
    """RL006: public functions/methods must be fully annotated.

    Applies to module-level functions and methods of public classes
    under ``src/repro``: every parameter (except ``self``/``cls``) and
    the return type must carry an annotation.  ``__init__`` counts as
    public; other dunders and ``_private`` names are the author's
    business (mypy still covers them in the strict packages).
    """

    rule_id = "RL006"
    name = "annotation-completeness"
    description = (
        "public functions and methods under src/repro must annotate "
        "every parameter and the return type"
    )

    def applies(self, module: ModuleContext) -> bool:
        return module.within("src/repro")

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        yield from self._scan(module, module.tree.body, in_class=False)

    def _scan(
        self,
        module: ModuleContext,
        body: list[ast.stmt],
        in_class: bool,
    ) -> Iterator[Violation]:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if self._is_public(node.name):
                    missing = self._missing_annotations(node, in_class)
                    if missing:
                        yield self.violation(
                            module,
                            node,
                            f"public {'method' if in_class else 'function'} "
                            f"{node.name!r} missing annotations: "
                            + ", ".join(missing),
                        )
                # Nested defs are not public API — do not recurse.
            elif isinstance(node, ast.ClassDef) and self._is_public(node.name):
                yield from self._scan(module, node.body, in_class=True)

    @staticmethod
    def _is_public(name: str) -> bool:
        return not name.startswith("_") or name == "__init__"

    @staticmethod
    def _missing_annotations(
        node: ast.FunctionDef | ast.AsyncFunctionDef, in_class: bool
    ) -> list[str]:
        args = node.args
        positional = args.posonlyargs + args.args
        is_static = any(
            isinstance(dec, ast.Name) and dec.id == "staticmethod"
            for dec in node.decorator_list
        )
        missing: list[str] = []
        for index, arg in enumerate(positional):
            if (
                index == 0
                and in_class
                and not is_static
                and arg.arg in ("self", "cls")
            ):
                continue
            if arg.annotation is None:
                missing.append(f"parameter {arg.arg!r}")
        missing.extend(
            f"parameter {arg.arg!r}"
            for arg in args.kwonlyargs
            if arg.annotation is None
        )
        if args.vararg is not None and args.vararg.annotation is None:
            missing.append(f"parameter *{args.vararg.arg}")
        if args.kwarg is not None and args.kwarg.annotation is None:
            missing.append(f"parameter **{args.kwarg.arg}")
        if node.returns is None:
            missing.append("return type")
        return missing


@register
class DunderAllConsistencyRule(Rule):
    """RL008: ``__all__`` entries must exist; public defs must be listed.

    Three checks on modules that declare a literal ``__all__``: every
    entry is a string naming something bound at module level, no entry
    appears twice, and every public module-level ``def``/``class`` is
    exported.  Modules building ``__all__`` dynamically are skipped —
    they opt out of mechanical verification.
    """

    rule_id = "RL008"
    name = "dunder-all-consistency"
    description = (
        "__all__ must list existing names exactly once and include every "
        "public module-level def/class"
    )

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        declaration = self._find_all(module.tree)
        if declaration is None:
            return
        node, value = declaration
        if not isinstance(value, (ast.List, ast.Tuple)):
            return  # dynamically built — not mechanically verifiable
        bound = _module_level_bindings(module.tree)
        if bound is None:
            return  # star import present — cannot verify
        entries: list[str] = []
        for element in value.elts:
            if not (
                isinstance(element, ast.Constant)
                and isinstance(element.value, str)
            ):
                yield self.violation(
                    module, element, "__all__ entries must be string literals"
                )
                continue
            name = element.value
            if name in entries:
                yield self.violation(
                    module, element, f"duplicate __all__ entry {name!r}"
                )
            entries.append(name)
            if name not in bound:
                yield self.violation(
                    module,
                    element,
                    f"__all__ names {name!r} which is not defined or "
                    "imported at module level",
                )
        listed = set(entries)
        for statement in module.tree.body:
            if (
                isinstance(
                    statement,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                )
                and not statement.name.startswith("_")
                and statement.name not in listed
            ):
                yield self.violation(
                    module,
                    statement,
                    f"public name {statement.name!r} is missing from "
                    "__all__",
                )

    @staticmethod
    def _find_all(
        tree: ast.Module,
    ) -> tuple[ast.stmt, ast.expr] | None:
        for statement in tree.body:
            if isinstance(statement, ast.Assign):
                for target in statement.targets:
                    if isinstance(target, ast.Name) and target.id == "__all__":
                        return statement, statement.value
            elif (
                isinstance(statement, ast.AnnAssign)
                and isinstance(statement.target, ast.Name)
                and statement.target.id == "__all__"
                and statement.value is not None
            ):
                return statement, statement.value
        return None


def _module_level_bindings(tree: ast.Module) -> set[str] | None:
    """Names bound at module scope, or ``None`` if a star import hides them.

    Recurses through ``if``/``try``/``for``/``while``/``with`` blocks
    (conditional definitions still bind at module scope) but not into
    function or class bodies.
    """
    bound: set[str] = set()
    stack: list[ast.stmt] = list(tree.body)
    while stack:
        node = stack.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            bound.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                bound.update(_target_names(target))
        elif isinstance(node, ast.AnnAssign):
            bound.update(_target_names(node.target))
        elif isinstance(node, ast.AugAssign):
            bound.update(_target_names(node.target))
        elif isinstance(node, ast.Import):
            for alias in node.names:
                bound.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name == "*":
                    return None
                bound.add(alias.asname or alias.name)
        elif isinstance(node, (ast.If, ast.Try, ast.For, ast.While, ast.With)):
            for attr in ("body", "orelse", "finalbody", "handlers"):
                for child in getattr(node, attr, []):
                    if isinstance(child, ast.ExceptHandler):
                        stack.extend(child.body)
                    else:
                        stack.append(child)
    return bound


def _target_names(target: ast.expr) -> set[str]:
    if isinstance(target, ast.Name):
        return {target.id}
    if isinstance(target, (ast.Tuple, ast.List)):
        names: set[str] = set()
        for element in target.elts:
            names.update(_target_names(element))
        return names
    if isinstance(target, ast.Starred):
        return _target_names(target.value)
    return set()
