"""General defect-class rules: exception hygiene and mutable defaults.

Both are classic Python footguns, but they earn repo-specific rules
because of how they fail *here*: a broad ``except`` around a prober
loop can swallow the ``ValueError`` that signals a violated signature
contract, and a shared mutable default on an index constructor leaks
state across experiment repetitions, corrupting measured recall.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from reprolint.core import ModuleContext, Rule, Violation, register

__all__ = ["BroadExceptRule", "MutableDefaultRule"]


@register
class BroadExceptRule(Rule):
    """RL005: no bare ``except``; broad ``except`` must re-raise.

    ``except:`` and ``except BaseException:`` catch ``KeyboardInterrupt``
    and ``SystemExit``; ``except Exception:`` swallows contract
    violations (dtype/shape errors) that the test suite depends on
    surfacing.  A broad handler is tolerated only when it re-raises.
    """

    rule_id = "RL005"
    name = "broad-except"
    description = (
        "bare except is forbidden; except Exception/BaseException must "
        "re-raise"
    )

    _BROAD = ("Exception", "BaseException")

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.violation(
                    module,
                    node,
                    "bare except catches SystemExit/KeyboardInterrupt; "
                    "name the exception types",
                )
            elif (
                isinstance(node.type, ast.Name)
                and node.type.id in self._BROAD
                and not _reraises(node)
            ):
                yield self.violation(
                    module,
                    node,
                    f"except {node.type.id} without re-raise swallows "
                    "contract violations; catch specific exceptions or "
                    "re-raise",
                )


def _reraises(handler: ast.ExceptHandler) -> bool:
    """Whether the handler body contains a bare ``raise``."""
    return any(
        isinstance(node, ast.Raise) and node.exc is None
        for node in ast.walk(handler)
    )


@register
class MutableDefaultRule(Rule):
    """RL007: no mutable default argument values.

    A list/dict/set default is created once at ``def`` time and shared
    by every call — in this codebase that means state leaking across
    queries or experiment repetitions.  Use ``None`` and materialise
    inside the function.
    """

    rule_id = "RL007"
    name = "mutable-default"
    description = "function defaults must not be mutable (list/dict/set)"

    _MUTABLE_LITERALS = (
        ast.List,
        ast.Dict,
        ast.Set,
        ast.ListComp,
        ast.DictComp,
        ast.SetComp,
    )
    _MUTABLE_CALLS = ("list", "dict", "set", "bytearray")

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            defaults = list(node.args.defaults) + [
                default
                for default in node.args.kw_defaults
                if default is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    label = (
                        "lambda"
                        if isinstance(node, ast.Lambda)
                        else f"function {node.name!r}"
                    )
                    yield self.violation(
                        module,
                        default,
                        f"mutable default argument in {label}; default to "
                        "None and create the object inside the function",
                    )

    def _is_mutable(self, node: ast.expr) -> bool:
        if isinstance(node, self._MUTABLE_LITERALS):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in self._MUTABLE_CALLS
        )
