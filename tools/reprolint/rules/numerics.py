"""Rules protecting numeric and measurement contracts.

Signatures are int64/uint64 by construction (codes.py caps code length
at 63 bits); a single implicit-dtype array in a hot path silently
promotes to float64 or platform-int and corrupts signature arithmetic.
Timing feeds the paper's latency/recall trade-off figures, which are
meaningless under a non-monotonic clock.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from reprolint.core import ModuleContext, Rule, Violation, register

__all__ = ["ImplicitDtypeRule", "WallClockTimingRule"]

#: Hot-path packages where every array construction must pin its dtype.
_HOT_DIRS = ("repro/index", "repro/core", "repro/search")


@register
class ImplicitDtypeRule(Rule):
    """RL002: hot-path array factories must pass an explicit ``dtype``.

    ``np.asarray`` / ``np.zeros`` / ``np.empty`` default to float64 (or
    whatever the input carries), which breaks the int64 signature
    contract the probers and ``HashTable`` rely on.  A deliberate
    dtype-polymorphic call site states its intent with a suppression
    comment and a justification.
    """

    rule_id = "RL002"
    name = "implicit-dtype"
    description = (
        "np.asarray/np.zeros/np.empty in hot-path modules "
        "(repro/index, repro/core, repro/search) must pass an explicit dtype"
    )

    _FACTORIES = ("asarray", "zeros", "empty")
    _NUMPY_ALIASES = ("np", "numpy")

    def applies(self, module: ModuleContext) -> bool:
        return module.within(*_HOT_DIRS)

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in self._FACTORIES
                and isinstance(func.value, ast.Name)
                and func.value.id in self._NUMPY_ALIASES
            ):
                continue
            has_dtype = len(node.args) >= 2 or any(
                keyword.arg == "dtype" for keyword in node.keywords
            )
            if not has_dtype:
                yield self.violation(
                    module,
                    node,
                    f"np.{func.attr} without an explicit dtype in a "
                    "hot-path module; pin the dtype (signatures are "
                    "int64, vectors float64) or suppress with a "
                    "justification",
                )


@register
class WallClockTimingRule(Rule):
    """RL004: use ``time.perf_counter`` for intervals, never ``time.time``.

    ``time.time()`` is subject to NTP slew and DST wall-clock steps; a
    negative or inflated interval poisons latency stats and the
    ``time_budget`` stopping criterion.  All engine instrumentation
    uses ``perf_counter`` — so must every other timed path.
    """

    rule_id = "RL004"
    name = "wall-clock-timing"
    description = (
        "time.time() is forbidden in timed paths; use time.perf_counter()"
    )

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "time"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "time"
            ):
                yield self.violation(
                    module,
                    node,
                    "time.time() is not monotonic; use "
                    "time.perf_counter() for all timing",
                )
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name == "time":
                        yield self.violation(
                            module,
                            node,
                            "importing time.time invites wall-clock "
                            "timing; import time and use "
                            "time.perf_counter()",
                        )
