"""Rules protecting the query-engine architecture (PR 1).

Every index class is a thin adapter over ``repro.search.engine``; the
paper's instrumentation and exactly-once evaluation guarantees hold
only while retrieval/evaluation stay inside that engine.  These rules
make the boundary mechanical instead of conventional.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from reprolint.core import ModuleContext, Rule, Violation, register

__all__ = [
    "BucketEncapsulationRule",
    "EngineBypassRule",
    "StagePipelineEncapsulationRule",
]

#: Modules that constitute the query hot path: anything here that
#: scores candidates must do so through an engine evaluator.
_SEARCH_PATH_DIRS = (
    "repro/search",
    "repro/core",
    "repro/index",
    "repro/distributed",
)

#: The engine itself and the module defining the distance kernels are
#: the two legitimate homes of direct distance computation.
_EXEMPT_FILES = ("repro/search/engine.py", "repro/index/distance.py")


@register
class EngineBypassRule(Rule):
    """RL001: exact scoring in a search path must go through the engine.

    ``pairwise_distances`` (and the evaluator scoring it backs) may be
    *called* only inside ``repro/search/engine.py`` — any other call in
    a search-path module re-implements the evaluation stage outside the
    instrumented pipeline, so its work is invisible to
    ``ExecutionContext`` stats and exempt from the engine's shared
    top-k tie-breaking contract.
    """

    rule_id = "RL001"
    name = "engine-bypass"
    description = (
        "search-path modules must not call pairwise_distances directly; "
        "route exact scoring through a QueryEngine evaluator"
    )

    _TARGET = "pairwise_distances"

    def applies(self, module: ModuleContext) -> bool:
        return module.within(*_SEARCH_PATH_DIRS) and not module.is_file(
            *_EXEMPT_FILES
        )

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                name = _terminal_name(node.func)
                if name == self._TARGET:
                    yield self.violation(
                        module,
                        node,
                        "call to pairwise_distances bypasses the query "
                        "engine; use the index's QueryEngine evaluator "
                        "(see repro/search/engine.py)",
                    )
            elif isinstance(node, ast.ImportFrom) and not module.is_init:
                # Package __init__ modules may re-export the public name;
                # implementation modules in the search path may not even
                # import it.
                for alias in node.names:
                    if alias.name == self._TARGET:
                        yield self.violation(
                            module,
                            node,
                            "importing pairwise_distances into a "
                            "search-path module invites engine bypass; "
                            "depend on the QueryEngine evaluator instead",
                        )


@register
class BucketEncapsulationRule(Rule):
    """RL003: ``HashTable`` bucket storage is private to its module.

    Probers and the engine must reach buckets through ``get`` /
    ``signatures`` / ``dense_layout``; touching ``_buckets`` elsewhere
    couples callers to the dict-of-arrays layout and breaks the lazy
    CSR cache (``dense_layout``) that batched execution relies on.
    ``self._buckets`` is allowed anywhere — a class may own a bucket
    dict of its own (e.g. ``DynamicHashTable``).
    """

    rule_id = "RL003"
    name = "bucket-encapsulation"
    description = (
        "no access to HashTable private bucket storage (._buckets) "
        "outside repro/index/hash_table.py"
    )

    _ATTRIBUTE = "_buckets"

    def applies(self, module: ModuleContext) -> bool:
        return not module.is_file("repro/index/hash_table.py")

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Attribute)
                and node.attr == self._ATTRIBUTE
                and not (
                    isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                )
            ):
                yield self.violation(
                    module,
                    node,
                    "access to private bucket storage ._buckets outside "
                    "repro/index/hash_table.py; use get()/signatures()/"
                    "dense_layout()",
                )


@register
class StagePipelineEncapsulationRule(Rule):
    """RL011: pipeline stage internals stay inside ``repro/search``.

    The stage classes (``RetrieveStage`` … ``TruncateStage``), the
    ``PipelineState`` they thread, and the ``build_pipeline`` /
    ``drain_stream`` assembly helpers are the engine's implementation
    vocabulary.  Code outside ``repro/search`` configures pipelines
    declaratively — ``RerankSpec`` / ``FusionSpec`` on a ``QueryPlan``,
    ``IndexFusionPartner`` / ``linear_fusion`` for fusion wiring — and
    lets the engine assemble and run the stages.  Direct stage
    construction elsewhere would execute retrieval or scoring outside
    the instrumented pipeline, invisible to ``ExecutionContext`` stats,
    cache fingerprints and the per-stage telemetry label.
    """

    rule_id = "RL011"
    name = "stage-pipeline-encapsulation"
    description = (
        "pipeline stage internals (``*Stage`` classes, PipelineState, "
        "build_pipeline, drain_stream) may only be used inside "
        "repro/search; configure plans with RerankSpec/FusionSpec "
        "instead"
    )

    _STAGES_MODULE = "repro.search.stages"
    _INTERNAL_NAMES = frozenset(
        {"Stage", "PipelineState", "build_pipeline", "drain_stream"}
    )

    def applies(self, module: ModuleContext) -> bool:
        return module.within("src/repro") and not module.within(
            "repro/search"
        )

    def _is_internal(self, name: str | None) -> bool:
        if name is None:
            return False
        return name in self._INTERNAL_NAMES or name.endswith("Stage")

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == self._STAGES_MODULE:
                        yield self.violation(
                            module,
                            node,
                            "importing repro.search.stages wholesale "
                            "exposes stage internals; import the spec "
                            "types (RerankSpec, FusionSpec, ...) from "
                            "repro.search instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if self._is_internal(alias.name):
                        yield self.violation(
                            module,
                            node,
                            f"importing stage internal {alias.name!r} "
                            "outside repro/search; configure the plan "
                            "with RerankSpec/FusionSpec and let the "
                            "engine assemble the pipeline",
                        )
            elif isinstance(node, ast.Call):
                name = _terminal_name(node.func)
                if self._is_internal(name):
                    yield self.violation(
                        module,
                        node,
                        f"call to stage internal {name!r} outside "
                        "repro/search runs pipeline stages outside the "
                        "instrumented engine",
                    )


def _terminal_name(func: ast.expr) -> str | None:
    """The called name: ``f`` for ``f(...)`` and ``obj.f(...)`` alike."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None
