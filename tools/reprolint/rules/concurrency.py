"""RL012 — concurrency discipline (whole-program).

The serving layer (PR 5) runs engine code on ``ParallelBatchExecutor``
worker threads and established the per-child-lock contract for metric
cells: shared mutable state is only touched under a held
``threading.Lock``/``RLock`` context.  This rule enforces that
contract statically, using the project call graph:

* any ``self.<attr>`` mutation on a call path reachable from a
  thread-pool callable (``pool.submit(...)`` / ``Thread(target=...)``)
  must run under a ``with <lock>:`` block;
* classes that own a lock (``self.X = threading.Lock()`` in
  ``__init__``) must guard *every* mutation outside ``__init__`` —
  owning a lock and bypassing it is how the PR-5 metric races started;
* misuse patterns are flagged regardless of reachability: bare
  ``.acquire()`` instead of ``with``, locks constructed per call, and
  ``time.sleep`` while a lock is held.

Scope: ``repro/search``, ``repro/index``, ``repro/core`` and
``repro/obs`` — the packages whose objects are actually shared across
worker threads.  ``repro/distributed`` simulates its network on a
single thread (NetworkModel virtual time), so its mutations are not
shared-state and are deliberately out of scope; helpers there that are
*called from* engine threads still get caught through the call graph.
Helpers that mutate only under a caller-held lock carry a
``# reprolint: disable=RL012`` justification at the mutation site.
"""

from __future__ import annotations

from collections.abc import Iterator

from reprolint.core import ProjectRule, Violation, path_within, register
from reprolint.project import FunctionInfo, ProjectIndex

__all__ = ["ConcurrencyDiscipline"]

#: Packages whose objects are shared across threads.
_SHARED_DIRS = ("repro/search", "repro/index", "repro/core", "repro/obs")

#: Misuse facts are checked across every ``repro`` package.
_MISUSE_MESSAGES = {
    "acquire": (
        "lock {detail} acquired without `with`; use a context manager so "
        "the release survives exceptions"
    ),
    "lock_in_body": (
        "threading.{detail}() constructed per call; a lock only excludes "
        "threads that share the same instance — create it in __init__"
    ),
    "sleep_under_lock": (
        "time.sleep while holding {detail}; sleeping under a lock stalls "
        "every thread contending for it"
    ),
}


@register
class ConcurrencyDiscipline(ProjectRule):
    rule_id = "RL012"
    name = "concurrency-discipline"
    description = (
        "shared-state mutations on thread-reachable paths and in "
        "lock-owning classes must hold a lock; no bare acquire(), "
        "per-call locks, or sleep under a lock"
    )

    def check_project(self, project: ProjectIndex) -> Iterator[Violation]:
        reported: set[tuple[str, int, str]] = set()

        roots = project.thread_roots()
        parents = project.reachable_from(roots)
        for qualname in parents:
            info = project.functions.get(qualname)
            if info is None or info.is_init:
                continue
            if not path_within(info.path, *_SHARED_DIRS):
                continue
            for mutation in info.mutations:
                if mutation.guards:
                    continue
                key = (info.path, mutation.line, mutation.attr)
                if key in reported:
                    continue
                reported.add(key)
                chain = " -> ".join(
                    _short(q) for q in project.chain(parents, qualname)
                )
                yield Violation(
                    rule_id=self.rule_id,
                    message=(
                        f"self.{mutation.attr} mutated without a held "
                        f"lock on a thread-reachable path (via {chain}); "
                        "guard it with `with self.<lock>:` or suppress "
                        "with a justification if a caller holds the lock"
                    ),
                    path=info.path,
                    line=mutation.line,
                    column=mutation.col,
                    end_line=mutation.end_line,
                    end_col=mutation.end_col,
                )

        for cls in project.lock_owning_classes():
            if not path_within(cls.path, *_SHARED_DIRS):
                continue
            lock_attrs = set(cls.lock_attrs)
            locks = ", ".join(f"self.{a}" for a in cls.lock_attrs)
            for method_name in cls.methods:
                info = project.method(cls.name, method_name)
                if info is None or info.is_init:
                    continue
                for mutation in info.mutations:
                    if mutation.guards or mutation.attr in lock_attrs:
                        continue
                    key = (info.path, mutation.line, mutation.attr)
                    if key in reported:
                        continue
                    reported.add(key)
                    yield Violation(
                        rule_id=self.rule_id,
                        message=(
                            f"{cls.name} owns {locks} but "
                            f"{method_name}() mutates self."
                            f"{mutation.attr} without holding it; "
                            "guard the mutation or suppress with a "
                            "justification if a caller holds the lock"
                        ),
                        path=info.path,
                        line=mutation.line,
                        column=mutation.col,
                        end_line=mutation.end_line,
                        end_col=mutation.end_col,
                    )

        for info in project.functions.values():
            # Misuse patterns apply to library code only; tests and
            # benchmarks legitimately build throwaway locks inline.
            if not path_within(info.path, "repro"):
                continue
            for fact in info.lock_facts:
                template = _MISUSE_MESSAGES.get(fact.kind)
                if template is None:
                    continue
                yield Violation(
                    rule_id=self.rule_id,
                    message=template.format(detail=fact.detail),
                    path=info.path,
                    line=fact.line,
                    column=fact.col,
                    end_line=fact.end_line,
                    end_col=fact.end_col,
                )


def _short(qualname: str) -> str:
    """``repro.search.engine.QueryEngine.execute`` → ``QueryEngine.execute``."""
    parts = qualname.split(".")
    return ".".join(parts[-2:]) if len(parts) > 1 else qualname
