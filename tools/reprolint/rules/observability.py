"""Rules protecting the telemetry subsystem (PR 3).

Stage timing in the query path belongs to :mod:`repro.obs`: spans
measure, the registry aggregates, and ``ExecutionContext`` carries the
per-query numbers.  A stray ``perf_counter()`` in an index or search
module re-creates the pre-telemetry world — timings that never reach
the metrics histograms, never show up in sampled traces, and drift
from the engine's single-source-of-truth stage accounting.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from reprolint.core import ModuleContext, Rule, Violation, register

__all__ = ["SpanTimingRule"]

#: Packages whose timing must flow through repro.obs spans.  repro/obs
#: itself is a sibling package (the one sanctioned perf_counter home).
_SPAN_DIRS = ("repro/search", "repro/index", "repro/distributed")


@register
class SpanTimingRule(Rule):
    """RL009: query-path modules time with ``repro.obs`` spans.

    Direct ``time.perf_counter()`` calls (or ``from time import
    perf_counter``) are forbidden in ``repro/search``, ``repro/index``
    and ``repro/distributed``.  Use ``obs.span(name)`` for stage
    timing, or ``obs.now()`` for deadline arithmetic (the engine's
    ``time_budget`` check); both live in ``repro/obs/spans.py``, the
    one sanctioned home of the raw clock.
    """

    rule_id = "RL009"
    name = "span-timing"
    description = (
        "no direct time.perf_counter() in repro/search, repro/index or "
        "repro/distributed; time stages with repro.obs spans "
        "(obs.span / obs.now)"
    )

    _TARGET = "perf_counter"

    def applies(self, module: ModuleContext) -> bool:
        return module.within(*_SPAN_DIRS)

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                func = node.func
                is_attribute_call = (
                    isinstance(func, ast.Attribute)
                    and func.attr == self._TARGET
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "time"
                )
                is_bare_call = (
                    isinstance(func, ast.Name) and func.id == self._TARGET
                )
                if is_attribute_call or is_bare_call:
                    yield self.violation(
                        module,
                        node,
                        "direct perf_counter() call bypasses the "
                        "telemetry subsystem; wrap the stage in "
                        "obs.span(...) or use obs.now() for deadlines",
                    )
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name == self._TARGET:
                        yield self.violation(
                            module,
                            node,
                            "importing perf_counter into a query-path "
                            "module invites untracked timing; use "
                            "repro.obs (span / now) instead",
                        )
