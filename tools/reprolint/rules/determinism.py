"""RL013 — determinism lint.

The paper's efficiency claims are validated by bit-identity suites
(oracle equivalence, qd_merge, pipeline equivalence, chaos), and those
only make sense if query execution is deterministic.  Three constructs
quietly break that:

* **Unseeded RNG** — module-level ``np.random.*`` draws from hidden
  global state; bare ``random.*`` likewise.  Every draw must go
  through a seeded ``np.random.default_rng(seed)`` / ``Generator`` or
  a ``random.Random(seed)`` instance.
* **Set-ordered results** — iterating a ``set`` (or passing one to
  ``list``/``tuple``/``enumerate``) feeds hash-randomised order into
  whatever is built from it.  Order-insensitive reductions
  (``sorted``, ``min``, ``len``, …) are fine.
* **Float accumulation order** — builtin ``sum()`` over an ndarray or
  other pre-built sequence accumulates left-to-right in object space;
  ``np.sum`` pairs/vectorises and is the engine's contractual
  reduction.  Generator/comprehension arguments are allowed — they fix
  their own order explicitly.

Scope: ``repro/search``, ``repro/probing``, ``repro/distributed`` —
where bit-identity is contractual per DESIGN.md.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from reprolint.core import ModuleContext, Rule, Violation, register

__all__ = ["DeterminismLint"]

_DIRS = ("repro/search", "repro/probing", "repro/distributed")

#: ``np.random.X`` members that construct *seedable* objects rather
#: than drawing from the hidden global state.
_SEEDABLE_NP = frozenset(
    {"default_rng", "Generator", "SeedSequence", "RandomState", "PCG64",
     "Philox", "MT19937", "SFC64", "BitGenerator"}
)

#: ``random.X`` members that are constructors, not global-state draws.
_SEEDABLE_STDLIB = frozenset({"Random", "SystemRandom"})

#: Builtins that consume an iterable without exposing its order.
_ORDER_INSENSITIVE = frozenset(
    {"sorted", "min", "max", "sum", "len", "any", "all", "set",
     "frozenset", "Counter"}
)

#: Builtins that materialise their argument's iteration order.
_ORDER_MATERIALISING = frozenset({"list", "tuple", "enumerate", "iter"})


def _is_set_expr(node: ast.expr, set_names: set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return True
    if isinstance(node, ast.Name) and node.id in set_names:
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # Set algebra preserves set-ness on at least the union/and
        # cases we care about; require the left side to be set-like.
        return _is_set_expr(node.left, set_names)
    return False


@register
class DeterminismLint(Rule):
    rule_id = "RL013"
    name = "determinism"
    description = (
        "no unseeded RNG, set-ordered iteration, or builtin sum() over "
        "arrays where bit-identity is contractual"
    )

    def applies(self, module: ModuleContext) -> bool:
        return module.within(*_DIRS)

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        yield from self._check_rng(module)
        yield from self._check_sets(module)
        yield from self._check_sum(module)

    # -- unseeded RNG --------------------------------------------------

    def _check_rng(self, module: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Attribute):
                continue
            value = node.value
            # np.random.X / numpy.random.X
            if (
                isinstance(value, ast.Attribute)
                and value.attr == "random"
                and isinstance(value.value, ast.Name)
                and value.value.id in ("np", "numpy")
            ):
                if node.attr not in _SEEDABLE_NP:
                    yield self.violation(
                        module,
                        node,
                        f"np.random.{node.attr} draws from hidden global "
                        "RNG state; use a seeded np.random.default_rng(...)",
                    )
            # bare random.X
            elif (
                isinstance(value, ast.Name)
                and value.id == "random"
                and node.attr not in _SEEDABLE_STDLIB
            ):
                yield self.violation(
                    module,
                    node,
                    f"random.{node.attr} draws from the process-global "
                    "RNG; use a seeded random.Random(...) instance",
                )

    # -- set-ordered iteration ----------------------------------------

    def _check_sets(self, module: ModuleContext) -> Iterator[Violation]:
        for scope in ast.walk(module.tree):
            if not isinstance(
                scope, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)
            ):
                continue
            yield from self._check_sets_in_scope(module, scope)

    def _check_sets_in_scope(
        self, module: ModuleContext, scope: ast.AST
    ) -> Iterator[Violation]:
        # Names assigned a set expression in this scope, in source
        # order; reassignment to a non-set clears the mark.
        set_names: set[str] = set()
        body = getattr(scope, "body", [])
        for node in self._walk_scope(body):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        if _is_set_expr(node.value, set_names):
                            set_names.add(target.id)
                        else:
                            set_names.discard(target.id)
            if isinstance(node, ast.For) and _is_set_expr(
                node.iter, set_names
            ):
                yield self.violation(
                    module,
                    node.iter,
                    "iterating a set feeds hash-randomised order into "
                    "the loop; sort first (sorted(...)) or keep a list",
                )
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                for comp in node.generators:
                    if _is_set_expr(comp.iter, set_names):
                        yield self.violation(
                            module,
                            comp.iter,
                            "comprehension over a set produces "
                            "hash-randomised order; sort first",
                        )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in _ORDER_MATERIALISING
                and node.args
                and _is_set_expr(node.args[0], set_names)
            ):
                yield self.violation(
                    module,
                    node,
                    f"{node.func.id}() over a set materialises "
                    "hash-randomised order; use sorted(...)",
                )

    def _walk_scope(self, body: list[ast.stmt]) -> Iterator[ast.AST]:
        """Walk statements without descending into nested functions."""
        for stmt in body:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            yield from ast.walk(stmt)

    # -- float accumulation order -------------------------------------

    def _check_sum(self, module: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "sum"
                and node.args
            ):
                continue
            arg = node.args[0]
            # Generators/comprehensions state their own accumulation
            # order; pre-built sequences (ndarrays especially) do not.
            if isinstance(arg, (ast.GeneratorExp, ast.ListComp)):
                continue
            yield self.violation(
                module,
                node,
                "builtin sum() over a pre-built sequence accumulates in "
                "data-dependent order (and element-wise over ndarrays); "
                "use np.sum/math.fsum or an explicit comprehension",
            )
