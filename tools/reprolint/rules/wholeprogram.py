"""RL014 — cross-module engine integrity (whole-program).

RL001 (engine bypass) and RL011 (stage encapsulation) are per-file:
they catch ``repro/eval`` importing ``pairwise_distances`` or touching
``CandidatePipeline`` directly, but not a helper that reaches the same
internals through one level of indirection.  This rule closes that
hole with the project call graph:

* **Engine-internal reach** — a function outside ``repro/search``
  whose call chain reaches an engine/stage-internal symbol
  (underscore-prefixed functions defined under ``repro/search``, plus
  the named pipeline internals) *without passing through the public
  engine API* is an engine bypass.  Chains that enter through a public
  ``repro/search`` function are fine — that is the API working as
  intended — so the traversal stops expanding once it crosses into
  ``repro/search``.
* **Transitive exact-distance use** — a function in the search path
  (``repro/search``/``core``/``index``/``distributed``) that reaches
  ``pairwise_distances`` through helpers *outside* the exempt modules
  (``engine.py``, ``distance.py``) defeats RL001's budget-accounting
  contract one hop removed.

Findings anchor at the offending function's definition site and quote
the full call chain, so suppression at the definition site silences
the whole chain.
"""

from __future__ import annotations

from collections.abc import Iterator

from reprolint.core import (
    ProjectRule,
    Violation,
    path_is_file,
    path_within,
    register,
)
from reprolint.project import FunctionInfo, ProjectIndex

__all__ = ["EngineIntegrity"]

_SEARCH_DIR = "repro/search"
_SEARCH_PATH_DIRS = (
    "repro/search",
    "repro/core",
    "repro/index",
    "repro/distributed",
)
#: Modules allowed to call ``pairwise_distances`` directly (RL001's
#: exemption list): the evaluator itself and the distance kernels.
_EXACT_EXEMPT_FILES = ("repro/search/engine.py", "repro/index/distance.py")

#: Pipeline internals that are engine-private regardless of their
#: leading character (``drain_stream`` has no underscore but is the
#: stage pipeline's drain loop).
_NAMED_INTERNALS = frozenset(
    {"drain_stream", "build_pipeline", "_run_post_stages"}
)


def _is_engine_internal(info: FunctionInfo) -> bool:
    if not path_within(info.path, _SEARCH_DIR):
        return False
    if info.name in _NAMED_INTERNALS:
        return True
    return info.name.startswith("_") and not info.name.startswith("__")


@register
class EngineIntegrity(ProjectRule):
    rule_id = "RL014"
    name = "engine-integrity"
    description = (
        "no transitive reach into engine/stage internals from outside "
        "repro/search, and no exact-distance use smuggled through "
        "out-of-path helpers"
    )

    def check_project(self, project: ProjectIndex) -> Iterator[Violation]:
        yield from self._check_internal_reach(project)
        yield from self._check_exact_distance(project)

    # -- engine-internal reach ----------------------------------------

    def _check_internal_reach(
        self, project: ProjectIndex
    ) -> Iterator[Violation]:
        # For each repro function outside repro/search, walk call edges
        # without expanding through repro/search nodes: landing on an
        # internal symbol means the chain bypassed the public API.
        # Memoised over the non-search functions, which form the only
        # expandable nodes.
        hits: dict[str, tuple[str, ...] | None] = {}

        def first_internal_chain(
            info: FunctionInfo, visiting: set[str]
        ) -> tuple[str, ...] | None:
            cached = hits.get(info.qualname, _UNSET)
            if cached is not _UNSET:
                return cached
            if info.qualname in visiting:
                return None
            visiting.add(info.qualname)
            result: tuple[str, ...] | None = None
            for ref in info.calls:
                for target in project.resolve(ref, info):
                    if _is_engine_internal(target):
                        result = (info.qualname, target.qualname)
                        break
                    if path_within(target.path, _SEARCH_DIR):
                        continue  # entered via public API: fine
                    sub = first_internal_chain(target, visiting)
                    if sub is not None:
                        result = (info.qualname, *sub)
                        break
                if result is not None:
                    break
            visiting.discard(info.qualname)
            hits[info.qualname] = result
            return result

        for info in sorted(
            project.functions.values(), key=lambda f: f.qualname
        ):
            if path_within(info.path, _SEARCH_DIR):
                continue
            if not path_within(info.path, "repro"):
                continue  # tests/benchmarks may poke internals
            chain = first_internal_chain(info, set())
            if chain is None or len(chain) < 2:
                continue
            # Every repro function with a chain is reported (callers of
            # a flagged helper included) — each definition site can be
            # suppressed independently.
            yield Violation(
                rule_id=self.rule_id,
                message=(
                    "reaches engine-internal "
                    f"{_tail(chain[-1])} from outside repro/search "
                    f"(call chain: {' -> '.join(_tail(q) for q in chain)}); "
                    "route through the public engine API"
                ),
                path=info.path,
                line=info.line,
                column=info.col,
            )

    # -- transitive exact-distance use --------------------------------

    def _check_exact_distance(
        self, project: ProjectIndex
    ) -> Iterator[Violation]:
        # Helpers outside the exempt modules that call
        # pairwise_distances directly.  RL001 flags these when they sit
        # in the search path; here we flag search-path functions that
        # reach one wherever it lives.
        tainted: dict[str, str] = {}
        for info in project.functions.values():
            if path_is_file(info.path, *_EXACT_EXEMPT_FILES):
                continue
            for ref in info.calls:
                if ref.name == "pairwise_distances":
                    tainted[info.qualname] = info.qualname
                    break

        if not tainted:
            return

        changed = True
        while changed:
            # Propagate taint one call-edge at a time up to a fixpoint;
            # exempt modules stop propagation (calling the evaluator is
            # the sanctioned route).
            changed = False
            for info in project.functions.values():
                if info.qualname in tainted:
                    continue
                if path_is_file(info.path, *_EXACT_EXEMPT_FILES):
                    continue
                for ref in info.calls:
                    for target in project.resolve(ref, info):
                        if target.qualname in tainted:
                            tainted[info.qualname] = tainted[
                                target.qualname
                            ]
                            changed = True
                            break
                    if info.qualname in tainted:
                        break

        for info in sorted(
            project.functions.values(), key=lambda f: f.qualname
        ):
            source = tainted.get(info.qualname)
            if source is None or source == info.qualname:
                continue  # direct calls are RL001's per-file business
            if not path_within(info.path, *_SEARCH_PATH_DIRS):
                continue
            if path_is_file(info.path, *_EXACT_EXEMPT_FILES):
                continue
            yield Violation(
                rule_id=self.rule_id,
                message=(
                    f"reaches pairwise_distances via {_tail(source)} "
                    "outside the exempt modules; exact scoring in the "
                    "search path must go through "
                    "ExactEvaluator.distances"
                ),
                path=info.path,
                line=info.line,
                column=info.col,
            )


_UNSET = object()


def _tail(qualname: str) -> str:
    parts = qualname.split(".")
    return ".".join(parts[-2:]) if len(parts) > 1 else qualname
