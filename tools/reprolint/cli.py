"""Console entry point: ``python -m reprolint [paths...]``.

Exit codes: 0 — clean, 1 — violations found, 2 — usage error or a file
that could not be read.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from collections.abc import Sequence

from reprolint.core import Rule, all_rules, check_paths

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=(
            "Repo-specific static analysis for the repro codebase: "
            "engine-architecture and numeric-contract rules generic "
            "linters cannot express."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests", "benchmarks"],
        help="files or directories to check (default: src tests benchmarks)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _pick_rules(select: str | None, ignore: str | None) -> list[Rule]:
    rules = all_rules()
    known = {rule.rule_id for rule in rules}
    for option, value in (("--select", select), ("--ignore", ignore)):
        if value:
            unknown = {r.strip() for r in value.split(",")} - known
            if unknown:
                raise SystemExit(
                    f"reprolint: unknown rule id(s) for {option}: "
                    + ", ".join(sorted(unknown))
                )
    if select:
        wanted = {r.strip() for r in select.split(",")}
        rules = [rule for rule in rules if rule.rule_id in wanted]
    if ignore:
        dropped = {r.strip() for r in ignore.split(",")}
        rules = [rule for rule in rules if rule.rule_id not in dropped]
    return rules


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  {rule.name}: {rule.description}")
        return 0

    try:
        rules = _pick_rules(options.select, options.ignore)
        violations, files_checked = check_paths(options.paths, rules)
    except SystemExit as exc:
        print(exc, file=sys.stderr)
        return 2
    except (FileNotFoundError, OSError) as exc:
        print(f"reprolint: {exc}", file=sys.stderr)
        return 2

    if options.format == "json":
        counts = Counter(violation.rule_id for violation in violations)
        print(
            json.dumps(
                {
                    "files_checked": files_checked,
                    "violation_count": len(violations),
                    "counts_by_rule": dict(sorted(counts.items())),
                    "violations": [v.as_dict() for v in violations],
                },
                indent=2,
            )
        )
    else:
        for violation in violations:
            print(violation.format_text())
        noun = "violation" if len(violations) == 1 else "violations"
        print(
            f"reprolint: {len(violations)} {noun} "
            f"({files_checked} files checked)"
        )
    return 1 if violations else 0
