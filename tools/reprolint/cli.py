"""Console entry point: ``python -m reprolint [paths...]``.

Exit codes: 0 — clean (or no *new* findings under ``--fail-on-new``),
1 — violations found, 2 — usage error or a file that could not be
read.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from collections.abc import Sequence

from reprolint.analysis import run_analysis
from reprolint.baseline import filter_new, load_baseline, write_baseline
from reprolint.core import Rule, all_rules
from reprolint.sarif import to_sarif

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=(
            "Repo-specific static analysis for the repro codebase: "
            "engine-architecture, numeric-contract, concurrency and "
            "determinism rules generic linters cannot express."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests", "benchmarks"],
        help="files or directories to check (default: src tests benchmarks)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for per-file analysis (default: auto; "
        "1 forces serial)",
    )
    parser.add_argument(
        "--cache-dir",
        default=".reprolint-cache",
        metavar="DIR",
        help="content-hash result cache directory "
        "(default: .reprolint-cache)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the content-hash result cache",
    )
    parser.add_argument(
        "--baseline",
        default=".reprolint-baseline.json",
        metavar="FILE",
        help="accepted-findings baseline file "
        "(default: .reprolint-baseline.json)",
    )
    parser.add_argument(
        "--fail-on-new",
        action="store_true",
        help="fail only on findings absent from the baseline",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept all current findings into the baseline and exit 0",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print analysis statistics (files, cache hits, duration) "
        "to stderr",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _pick_rules(select: str | None, ignore: str | None) -> list[Rule]:
    rules = all_rules()
    known = {rule.rule_id for rule in rules}
    for option, value in (("--select", select), ("--ignore", ignore)):
        if value:
            unknown = {r.strip() for r in value.split(",")} - known
            if unknown:
                raise SystemExit(
                    f"reprolint: unknown rule id(s) for {option}: "
                    + ", ".join(sorted(unknown))
                )
    if select:
        wanted = {r.strip() for r in select.split(",")}
        rules = [rule for rule in rules if rule.rule_id in wanted]
    if ignore:
        dropped = {r.strip() for r in ignore.split(",")}
        rules = [rule for rule in rules if rule.rule_id not in dropped]
    return rules


def _emit(text: str, output: str | None) -> None:
    if output:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(text if text.endswith("\n") else text + "\n")
    else:
        print(text)


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  {rule.name}: {rule.description}")
        return 0

    try:
        rules = _pick_rules(options.select, options.ignore)
        report = run_analysis(
            options.paths,
            rules=rules,
            jobs=options.jobs,
            cache_dir=None if options.no_cache else options.cache_dir,
        )
    except SystemExit as exc:
        print(exc, file=sys.stderr)
        return 2
    except (FileNotFoundError, OSError) as exc:
        print(f"reprolint: {exc}", file=sys.stderr)
        return 2

    violations = report.violations
    files_checked = report.files_checked

    if options.stats:
        stats = report.stats
        print(
            "reprolint: {files} files, {cache_hits} cached, "
            "{jobs} jobs, {duration_seconds}s".format(**stats),
            file=sys.stderr,
        )

    if options.write_baseline:
        count = write_baseline(options.baseline, violations)
        print(
            f"reprolint: baseline written to {options.baseline} "
            f"({count} accepted findings)"
        )
        return 0

    gating = violations
    if options.fail_on_new:
        try:
            accepted = load_baseline(options.baseline)
        except ValueError as exc:
            print(f"reprolint: {exc}", file=sys.stderr)
            return 2
        gating = filter_new(violations, accepted)

    # Reports always show the gating set: with --fail-on-new, that is
    # the new findings only (the baseline entries are accepted debt).
    shown = gating if options.fail_on_new else violations

    if options.format == "sarif":
        _emit(json.dumps(to_sarif(shown), indent=2), options.output)
    elif options.format == "json":
        counts = Counter(violation.rule_id for violation in shown)
        _emit(
            json.dumps(
                {
                    "files_checked": files_checked,
                    "violation_count": len(shown),
                    "counts_by_rule": dict(sorted(counts.items())),
                    "violations": [v.as_dict() for v in shown],
                },
                indent=2,
            ),
            options.output,
        )
    else:
        lines = [violation.format_text() for violation in shown]
        noun = "violation" if len(shown) == 1 else "violations"
        qualifier = " new" if options.fail_on_new else ""
        lines.append(
            f"reprolint: {len(shown)}{qualifier} {noun} "
            f"({files_checked} files checked)"
        )
        _emit("\n".join(lines), options.output)
    return 1 if gating else 0
