"""Visitor infrastructure, rule registry and suppression handling.

A :class:`Rule` inspects one parsed module (a :class:`ModuleContext`)
and yields :class:`Violation` instances.  Rules self-register through
the :func:`register` decorator; the CLI runs every registered rule
whose :meth:`Rule.applies` accepts the module's path.

Suppression mirrors the classic linter contract: a trailing
``# reprolint: disable=RL001`` comment silences the named rule(s) on
that physical line, and a comment-only directive line silences them on
the next statement line.  Anything after ``--`` in the directive is a
free-form justification.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "ModuleContext",
    "Rule",
    "Violation",
    "all_rules",
    "check_paths",
    "check_source",
    "collect_files",
    "get_rule",
    "register",
    "suppressed_lines",
]

_DIRECTIVE_RE = re.compile(
    r"#\s*reprolint:\s*disable=([A-Z]{2}\d{3}(?:\s*,\s*[A-Z]{2}\d{3})*)"
)
_RULE_ID_RE = re.compile(r"^[A-Z]{2}\d{3}$")

#: Pseudo rule id attached to files that fail to parse.  Not in the
#: registry and not suppressible — a syntax error hides every other
#: finding in the file.
PARSE_ERROR = "RL000"


@dataclass(frozen=True)
class Violation:
    """One finding: a rule, a location, and a human-readable message."""

    rule_id: str
    message: str
    path: str
    line: int
    column: int

    def format_text(self) -> str:
        return f"{self.path}:{self.line}:{self.column}: {self.rule_id} {self.message}"

    def as_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule_id,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "column": self.column,
        }

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.column, self.rule_id)


class ModuleContext:
    """A parsed module plus the path metadata rules filter on."""

    def __init__(self, path: str | Path, source: str) -> None:
        self.path = Path(path)
        self.source = source
        self.norm = self.path.as_posix()
        self.tree = ast.parse(source, filename=self.norm)

    @property
    def is_init(self) -> bool:
        """Whether this module is a package ``__init__.py``."""
        return self.path.name == "__init__.py"

    def within(self, *directories: str) -> bool:
        """True if the module lives under any of ``directories``.

        Directory names are slash-separated suffix-free fragments such
        as ``"repro/search"`` — matched as whole path components, so
        ``repro/search_utils`` does not match ``repro/search``.
        """
        haystack = f"/{self.norm}"
        return any(f"/{d.strip('/')}/" in haystack for d in directories)

    def is_file(self, *names: str) -> bool:
        """True if the module path ends with any of ``names``."""
        haystack = f"/{self.norm}"
        return any(haystack.endswith(f"/{n.lstrip('/')}") for n in names)


class Rule:
    """Base class for reprolint rules.

    Subclasses set ``rule_id`` (``RLxxx``), ``name`` (short slug) and
    ``description`` (one line, shown by ``--list-rules``), override
    :meth:`check`, and optionally narrow :meth:`applies`.
    """

    rule_id: str = ""
    name: str = ""
    description: str = ""

    def applies(self, module: ModuleContext) -> bool:
        """Whether this rule runs on ``module`` (path-based scoping)."""
        return True

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        """Yield violations found in ``module``."""
        raise NotImplementedError

    def violation(
        self, module: ModuleContext, node: ast.AST, message: str
    ) -> Violation:
        """Build a :class:`Violation` anchored at ``node``."""
        return Violation(
            rule_id=self.rule_id,
            message=message,
            path=module.norm,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
        )


_REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not _RULE_ID_RE.match(cls.rule_id):
        raise ValueError(f"bad rule id {cls.rule_id!r} on {cls.__name__}")
    if cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule, sorted by id."""
    _load_builtin_rules()
    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    """Instantiate one registered rule by id."""
    _load_builtin_rules()
    return _REGISTRY[rule_id]()


def _load_builtin_rules() -> None:
    # Imported lazily so `import reprolint.core` alone has no side
    # effects; the import registers every built-in rule module.
    import reprolint.rules  # noqa: F401


def suppressed_lines(source: str) -> dict[int, set[str]]:
    """Map line number → rule ids silenced on that line.

    Trailing directives apply to their own line; comment-only directive
    lines also apply to the next non-comment, non-blank line (useful
    above a long multi-line statement).
    """
    suppressed: dict[int, set[str]] = {}
    pending: set[str] = set()
    for lineno, line in enumerate(source.splitlines(), 1):
        stripped = line.strip()
        if pending and stripped and not stripped.startswith("#"):
            suppressed.setdefault(lineno, set()).update(pending)
            pending = set()
        match = _DIRECTIVE_RE.search(line)
        if match is None:
            continue
        codes = {code.strip() for code in match.group(1).split(",")}
        if stripped.startswith("#"):
            pending |= codes
        else:
            suppressed.setdefault(lineno, set()).update(codes)
    return suppressed


def check_source(
    source: str,
    path: str | Path,
    rules: Iterable[Rule] | None = None,
) -> list[Violation]:
    """Run ``rules`` (default: all registered) over one module's source."""
    norm = Path(path).as_posix()
    try:
        module = ModuleContext(path, source)
    except SyntaxError as exc:
        return [
            Violation(
                rule_id=PARSE_ERROR,
                message=f"syntax error: {exc.msg}",
                path=norm,
                line=exc.lineno or 1,
                column=(exc.offset or 1),
            )
        ]
    silenced = suppressed_lines(source)
    found: list[Violation] = []
    for rule in all_rules() if rules is None else rules:
        if not rule.applies(module):
            continue
        for violation in rule.check(module):
            if violation.rule_id in silenced.get(violation.line, set()):
                continue
            found.append(violation)
    return sorted(found, key=Violation.sort_key)


def collect_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            files.add(path)
        elif path.is_dir():
            for candidate in path.rglob("*.py"):
                parts = candidate.parts
                if any(p.startswith(".") or p == "__pycache__" for p in parts):
                    continue
                files.add(candidate)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(files)


def check_paths(
    paths: Iterable[str | Path],
    rules: Iterable[Rule] | None = None,
) -> tuple[list[Violation], int]:
    """Check every ``.py`` file under ``paths``.

    Returns ``(violations, files_checked)``.
    """
    rule_list = list(all_rules() if rules is None else rules)
    files = collect_files(paths)
    found: list[Violation] = []
    for file in files:
        source = file.read_text(encoding="utf-8")
        found.extend(check_source(source, file, rule_list))
    return sorted(found, key=Violation.sort_key), len(files)
