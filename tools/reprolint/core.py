"""Visitor infrastructure, rule registry and suppression handling.

A :class:`Rule` inspects one parsed module (a :class:`ModuleContext`)
and yields :class:`Violation` instances.  Rules self-register through
the :func:`register` decorator; the CLI runs every registered rule
whose :meth:`Rule.applies` accepts the module's path.

Suppression mirrors the classic linter contract: a trailing
``# reprolint: disable=RL001`` comment silences the named rule(s) on
that physical line, and a comment-only directive line silences them on
the next statement line.  Anything after ``--`` in the directive is a
free-form justification.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from reprolint.project import ProjectIndex

__all__ = [
    "ModuleContext",
    "ProjectRule",
    "Rule",
    "Violation",
    "all_rules",
    "check_paths",
    "check_source",
    "collect_files",
    "get_rule",
    "node_region",
    "path_is_file",
    "path_within",
    "register",
    "suppressed_lines",
]

_DIRECTIVE_RE = re.compile(
    r"#\s*reprolint:\s*disable=([A-Z]{2}\d{3}(?:\s*,\s*[A-Z]{2}\d{3})*)"
)
_RULE_ID_RE = re.compile(r"^[A-Z]{2}\d{3}$")

#: Pseudo rule id attached to files that fail to parse.  Not in the
#: registry and not suppressible — a syntax error hides every other
#: finding in the file.
PARSE_ERROR = "RL000"


@dataclass(frozen=True)
class Violation:
    """One finding: a rule, a location, and a human-readable message.

    Locations are 1-based.  ``column`` points at the first character of
    the offending node; ``end_col`` is *exclusive* (one past the last
    character), matching the SARIF region convention.  ``end_line`` /
    ``end_col`` of ``0`` mean "unknown" and normalise to the start
    position.
    """

    rule_id: str
    message: str
    path: str
    line: int
    column: int
    end_line: int = 0
    end_col: int = 0

    @property
    def region(self) -> tuple[int, int, int, int]:
        """``(line, column, end_line, end_col)`` with ends normalised."""
        end_line = self.end_line if self.end_line >= self.line else self.line
        end_col = self.end_col
        if end_line == self.line and end_col < self.column:
            end_col = self.column
        return (self.line, self.column, end_line, end_col)

    def format_text(self) -> str:
        return f"{self.path}:{self.line}:{self.column}: {self.rule_id} {self.message}"

    def as_dict(self) -> dict[str, object]:
        line, column, end_line, end_col = self.region
        return {
            "rule": self.rule_id,
            "message": self.message,
            "path": self.path,
            "line": line,
            "column": column,
            "end_line": end_line,
            "end_col": end_col,
        }

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.column, self.rule_id)


def node_region(node: ast.AST) -> tuple[int, int, int, int]:
    """1-based ``(line, col, end_line, end_col)`` for an AST node.

    Columns are derived from ``col_offset`` / ``end_col_offset`` —
    0-based in every supported Python — by adding 1, so reported
    columns are stable across versions; ``end_col`` stays exclusive.
    Nodes without position info anchor at ``1:1``.
    """
    line = getattr(node, "lineno", 1)
    column = getattr(node, "col_offset", 0) + 1
    end_line = getattr(node, "end_lineno", None) or line
    end_offset = getattr(node, "end_col_offset", None)
    end_col = (end_offset + 1) if end_offset is not None else column
    return (line, column, end_line, end_col)


def path_within(path: str, *directories: str) -> bool:
    """True if ``path`` lies under any of ``directories``.

    The standalone counterpart of :meth:`ModuleContext.within` for
    whole-program rules, which work with path strings rather than
    parsed modules.  Fragments match whole components, so
    ``repro/search_utils`` does not match ``repro/search``.
    """
    haystack = f"/{path}"
    return any(f"/{d.strip('/')}/" in haystack for d in directories)


def path_is_file(path: str, *names: str) -> bool:
    """True if ``path`` ends with any of ``names`` (whole components)."""
    haystack = f"/{path}"
    return any(haystack.endswith(f"/{n.lstrip('/')}") for n in names)


class ModuleContext:
    """A parsed module plus the path metadata rules filter on."""

    def __init__(self, path: str | Path, source: str) -> None:
        self.path = Path(path)
        self.source = source
        self.norm = self.path.as_posix()
        self.tree = ast.parse(source, filename=self.norm)

    @property
    def is_init(self) -> bool:
        """Whether this module is a package ``__init__.py``."""
        return self.path.name == "__init__.py"

    def within(self, *directories: str) -> bool:
        """True if the module lives under any of ``directories``.

        Directory names are slash-separated suffix-free fragments such
        as ``"repro/search"`` — matched as whole path components, so
        ``repro/search_utils`` does not match ``repro/search``.
        """
        haystack = f"/{self.norm}"
        return any(f"/{d.strip('/')}/" in haystack for d in directories)

    def is_file(self, *names: str) -> bool:
        """True if the module path ends with any of ``names``."""
        haystack = f"/{self.norm}"
        return any(haystack.endswith(f"/{n.lstrip('/')}") for n in names)


class Rule:
    """Base class for reprolint rules.

    Subclasses set ``rule_id`` (``RLxxx``), ``name`` (short slug) and
    ``description`` (one line, shown by ``--list-rules``), override
    :meth:`check`, and optionally narrow :meth:`applies`.
    """

    rule_id: str = ""
    name: str = ""
    description: str = ""

    def applies(self, module: ModuleContext) -> bool:
        """Whether this rule runs on ``module`` (path-based scoping)."""
        return True

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        """Yield violations found in ``module``."""
        raise NotImplementedError

    def violation(
        self, module: ModuleContext, node: ast.AST, message: str
    ) -> Violation:
        """Build a :class:`Violation` anchored at ``node``."""
        line, column, end_line, end_col = node_region(node)
        return Violation(
            rule_id=self.rule_id,
            message=message,
            path=module.norm,
            line=line,
            column=column,
            end_line=end_line,
            end_col=end_col,
        )


class ProjectRule(Rule):
    """Base class for whole-program rules.

    A project rule sees the :class:`reprolint.project.ProjectIndex` —
    the cross-file symbol table and call graph — instead of one module
    at a time.  Its findings are still anchored to concrete
    file/line/column sites, and per-line suppression applies at the
    *reported* site exactly as for per-file rules.
    """

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        """Project rules run via :meth:`check_project`, never per file."""
        return iter(())

    def check_project(self, project: ProjectIndex) -> Iterator[Violation]:
        """Yield violations found across the whole analysed file set."""
        raise NotImplementedError


_REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not _RULE_ID_RE.match(cls.rule_id):
        raise ValueError(f"bad rule id {cls.rule_id!r} on {cls.__name__}")
    if cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule, sorted by id."""
    _load_builtin_rules()
    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    """Instantiate one registered rule by id."""
    _load_builtin_rules()
    return _REGISTRY[rule_id]()


def _load_builtin_rules() -> None:
    # Imported lazily so `import reprolint.core` alone has no side
    # effects; the import registers every built-in rule module.
    import reprolint.rules  # noqa: F401


def suppressed_lines(source: str) -> dict[int, set[str]]:
    """Map line number → rule ids silenced on that line.

    Trailing directives apply to their own line; comment-only directive
    lines also apply to the next non-comment, non-blank line (useful
    above a long multi-line statement).
    """
    suppressed: dict[int, set[str]] = {}
    pending: set[str] = set()
    for lineno, line in enumerate(source.splitlines(), 1):
        stripped = line.strip()
        if pending and stripped and not stripped.startswith("#"):
            suppressed.setdefault(lineno, set()).update(pending)
            pending = set()
        match = _DIRECTIVE_RE.search(line)
        if match is None:
            continue
        codes = {code.strip() for code in match.group(1).split(",")}
        if stripped.startswith("#"):
            pending |= codes
        else:
            suppressed.setdefault(lineno, set()).update(codes)
    return suppressed


def check_source(
    source: str,
    path: str | Path,
    rules: Iterable[Rule] | None = None,
) -> list[Violation]:
    """Run ``rules`` (default: all registered) over one module's source."""
    norm = Path(path).as_posix()
    try:
        module = ModuleContext(path, source)
    except SyntaxError as exc:
        return [
            Violation(
                rule_id=PARSE_ERROR,
                message=f"syntax error: {exc.msg}",
                path=norm,
                line=exc.lineno or 1,
                column=(exc.offset or 1),
            )
        ]
    silenced = suppressed_lines(source)
    found: list[Violation] = []
    for rule in all_rules() if rules is None else rules:
        if isinstance(rule, ProjectRule) or not rule.applies(module):
            continue
        for violation in rule.check(module):
            if violation.rule_id in silenced.get(violation.line, set()):
                continue
            found.append(violation)
    return sorted(found, key=Violation.sort_key)


def collect_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            files.add(path)
        elif path.is_dir():
            for candidate in path.rglob("*.py"):
                parts = candidate.parts
                if any(p.startswith(".") or p == "__pycache__" for p in parts):
                    continue
                files.add(candidate)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(files)


def check_paths(
    paths: Iterable[str | Path],
    rules: Iterable[Rule] | None = None,
) -> tuple[list[Violation], int]:
    """Check every ``.py`` file under ``paths``.

    Runs both per-file and whole-program rules (serially, uncached —
    the CLI's :func:`reprolint.analysis.run_analysis` adds caching and
    multi-process execution on top of the same machinery).  Returns
    ``(violations, files_checked)``.
    """
    from reprolint.analysis import run_analysis

    report = run_analysis(paths, rules=rules, jobs=1, cache_dir=None)
    return report.violations, report.files_checked
