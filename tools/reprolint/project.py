"""Whole-program analysis: project symbol table and call graph.

Per-file AST rules cannot see that a helper two modules away ends up
inside a thread-pool worker, or that a chain of calls re-enters an
engine-private function.  This module extracts a compact, picklable
:class:`ModuleSummary` from each file — definitions, best-effort call
references, attribute mutations with the lock context they ran under,
and concurrency facts — and assembles them into a
:class:`ProjectIndex` offering name resolution and reachability
queries.  Summaries are pure functions of the source text, which is
what makes them safe to compute in worker processes and to cache by
content hash (:mod:`reprolint.analysis`).

Call-edge resolution is deliberately conservative and name-based:

* ``self.m(...)`` resolves through the enclosing class and its bases;
* ``f(...)`` resolves to the same-module function, else to any
  module-level function with that name;
* ``obj.m(...)`` resolves through ``obj``'s parameter annotation when
  one names a project class or Protocol (structural match), and
  otherwise falls back to *every* project function named ``m`` —
  except for generic container-method names (``get``, ``append``, …),
  which only resolve through an annotation, never globally.
* ``getattr(obj, "m")`` with a constant string is treated as a
  reference to ``m``.

Over-approximation is the right failure mode for the concurrency rules
built on top: an edge too many yields a reviewable finding, an edge
too few hides a race.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

from reprolint.core import node_region, suppressed_lines

__all__ = [
    "CallRef",
    "ClassInfo",
    "FunctionInfo",
    "LockFact",
    "ModuleSummary",
    "Mutation",
    "ProjectIndex",
    "SUMMARY_VERSION",
    "build_index",
    "module_name",
    "summarize_module",
]

#: Bump when the summary structure changes; participates in cache keys
#: so stale pickles from an older analyzer are never reused.
SUMMARY_VERSION = 3

#: Method names so generic (dict/list/set vocabulary) that a global
#: name-based resolution would wire ``seen.add(x)`` to every project
#: class with an ``add`` method.  These resolve only through a
#: parameter annotation.
_GENERIC_METHODS = frozenset(
    {
        "add", "append", "clear", "copy", "count", "discard", "extend",
        "get", "index", "insert", "items", "join", "keys", "pop",
        "popitem", "read", "remove", "reverse", "setdefault", "sort",
        "split", "strip", "update", "values", "write",
    }
)

#: Calling one of these on ``self.<attr>`` mutates the attribute's
#: referent in place.
_MUTATOR_METHODS = frozenset(
    {
        "add", "append", "appendleft", "clear", "discard", "extend",
        "insert", "pop", "popitem", "popleft", "remove", "reverse",
        "setdefault", "sort", "update",
    }
)


@dataclass(frozen=True)
class CallRef:
    """One best-effort call reference inside a function body.

    ``kind`` is ``"name"`` (bare call), ``"self"`` (method on self) or
    ``"attr"`` (method on anything else).  ``receiver`` carries the
    receiver's variable name when it is a plain name, for
    annotation-driven resolution.
    """

    kind: str
    name: str
    line: int
    col: int
    receiver: str | None = None


@dataclass(frozen=True)
class Mutation:
    """A write to ``self.<attr>`` and the lock guards it ran under."""

    attr: str
    kind: str  # "assign" | "augassign" | "call" | "delete" | "subscript"
    line: int
    col: int
    end_line: int
    end_col: int
    guards: tuple[str, ...]


@dataclass(frozen=True)
class LockFact:
    """A concurrency-misuse site: bare acquire, per-call lock, sleep."""

    kind: str  # "acquire" | "lock_in_body" | "sleep_under_lock"
    detail: str
    line: int
    col: int
    end_line: int
    end_col: int


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method, with the facts rules consume."""

    qualname: str  # "pkg.mod.Class.meth" or "pkg.mod.func"
    name: str
    module: str
    path: str
    cls: str | None
    line: int
    col: int
    is_init: bool
    calls: tuple[CallRef, ...] = ()
    mutations: tuple[Mutation, ...] = ()
    lock_facts: tuple[LockFact, ...] = ()
    #: parameter name → terminal annotation name ("BucketTable", ...)
    param_types: tuple[tuple[str, str], ...] = ()


@dataclass(frozen=True)
class ClassInfo:
    """One class: bases, methods, owned lock attributes."""

    name: str
    module: str
    path: str
    line: int
    bases: tuple[str, ...]
    methods: tuple[str, ...]
    lock_attrs: tuple[str, ...]
    is_protocol: bool


@dataclass
class ModuleSummary:
    """Everything the whole-program rules need from one file."""

    path: str
    module: str
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: callables handed to ``pool.submit`` / ``Thread(target=...)``
    thread_targets: tuple[CallRef, ...] = ()
    #: line → rule ids silenced there (mirrors per-file suppression)
    suppressed: dict[int, tuple[str, ...]] = field(default_factory=dict)


def module_name(path: str | Path) -> str:
    """Best-effort dotted module name for a file path.

    ``src/repro/search/engine.py`` → ``repro.search.engine``; a package
    ``__init__.py`` names the package itself.  Unrecognised layouts
    fall back to the slash-to-dot path, which keeps qualnames unique.
    """
    parts = list(Path(path).parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts.pop()
    while parts and parts[0] in ("src", "tools", ".", ".."):
        parts.pop(0)
    return ".".join(parts)


def _terminal(node: ast.expr) -> str | None:
    """``f`` for ``f`` and ``a.b.f`` alike; None for anything else."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_lock_factory(node: ast.expr) -> bool:
    """Whether this call expression constructs a threading lock."""
    if not isinstance(node, ast.Call):
        return False
    name = _terminal(node.func)
    return name in ("Lock", "RLock")


def _lock_expr_name(node: ast.expr, lock_attrs: frozenset[str]) -> str | None:
    """Human-readable guard name when ``node`` looks like a lock.

    Heuristics: ``self.X`` where ``X`` is a known lock attribute of the
    enclosing class, or any name/attribute whose final component
    mentions "lock" or "mutex".
    """
    if isinstance(node, ast.Attribute):
        base = "self." if (
            isinstance(node.value, ast.Name) and node.value.id == "self"
        ) else ""
        if base and node.attr in lock_attrs:
            return f"self.{node.attr}"
        if "lock" in node.attr.lower() or "mutex" in node.attr.lower():
            return f"{base}{node.attr}"
    elif isinstance(node, ast.Name) and (
        "lock" in node.id.lower() or "mutex" in node.id.lower()
    ):
        return node.id
    return None


def _self_attr(node: ast.expr) -> str | None:
    """``X`` when ``node`` is ``self.X`` (possibly under subscripts)."""
    while isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _annotation_name(node: ast.expr | None) -> str | None:
    """Terminal class name of a parameter annotation, if recoverable."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        # String annotation: take the first dotted name's terminal.
        text = node.value.strip().split("|")[0].strip()
        head = text.split("[")[0].strip()
        return head.split(".")[-1] or None
    if isinstance(node, ast.BinOp):  # X | None
        return _annotation_name(node.left)
    if isinstance(node, ast.Subscript):  # Optional[X], list[X] — take base
        return _annotation_name(node.value)
    return _terminal(node)


class _ModuleVisitor(ast.NodeVisitor):
    """Single-pass fact extractor feeding :class:`ModuleSummary`."""

    def __init__(self, path: str, module: str) -> None:
        self.path = path
        self.module = module
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.thread_targets: list[CallRef] = []
        self._class_stack: list[str] = []
        self._class_lock_attrs: dict[str, set[str]] = {}
        self._class_methods: dict[str, list[str]] = {}
        self._class_meta: dict[str, tuple[int, tuple[str, ...], bool]] = {}
        # Per-function accumulation (innermost function wins; nested
        # defs attribute their facts to themselves).
        self._fn_stack: list[dict] = []
        self._with_locks: list[str] = []

    # -- classes -------------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        bases = tuple(b for b in (_terminal(e) for e in node.bases) if b)
        self._class_stack.append(node.name)
        self._class_lock_attrs.setdefault(node.name, set())
        self._class_methods.setdefault(node.name, [])
        self._class_meta[node.name] = (
            node.lineno,
            bases,
            "Protocol" in bases,
        )
        self.generic_visit(node)
        self._class_stack.pop()

    # -- functions -----------------------------------------------------

    def _enter_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        cls = self._class_stack[-1] if self._class_stack else None
        if cls is not None and not self._fn_stack:
            self._class_methods[cls].append(node.name)
        qual = (
            f"{self.module}.{cls}.{node.name}"
            if cls and not self._fn_stack
            else f"{self.module}.{node.name}"
        )
        args = node.args
        params = []
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            ann = _annotation_name(arg.annotation)
            if ann:
                params.append((arg.arg, ann))
        self._fn_stack.append(
            {
                "qualname": qual,
                "name": node.name,
                "cls": cls if not self._fn_stack else None,
                "line": node.lineno,
                "col": node.col_offset + 1,
                "is_init": node.name in ("__init__", "__new__"),
                "calls": [],
                "mutations": [],
                "lock_facts": [],
                "param_types": tuple(params),
            }
        )

    def _leave_function(self) -> None:
        frame = self._fn_stack.pop()
        info = FunctionInfo(
            qualname=frame["qualname"],
            name=frame["name"],
            module=self.module,
            path=self.path,
            cls=frame["cls"],
            line=frame["line"],
            col=frame["col"],
            is_init=frame["is_init"],
            calls=tuple(frame["calls"]),
            mutations=tuple(frame["mutations"]),
            lock_facts=tuple(frame["lock_facts"]),
            param_types=frame["param_types"],
        )
        # Nested defs share the flat namespace; outermost wins on clash.
        self.functions.setdefault(info.qualname, info)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_function(node)
        self.generic_visit(node)
        self._leave_function()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_function(node)
        self.generic_visit(node)
        self._leave_function()

    # -- with / locks --------------------------------------------------

    def _current_lock_attrs(self) -> frozenset[str]:
        if self._class_stack:
            return frozenset(self._class_lock_attrs[self._class_stack[-1]])
        return frozenset()

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        guards = []
        for item in node.items:
            name = _lock_expr_name(
                item.context_expr, self._current_lock_attrs()
            )
            if name is not None:
                guards.append(name)
            # Visit the context expressions for call refs.
            self.visit(item.context_expr)
            if item.optional_vars is not None:
                self.visit(item.optional_vars)
        self._with_locks.extend(guards)
        for stmt in node.body:
            self.visit(stmt)
        if guards:
            del self._with_locks[len(self._with_locks) - len(guards):]

    # -- mutations -----------------------------------------------------

    def _record_mutation(self, attr: str, kind: str, node: ast.AST) -> None:
        if not self._fn_stack:
            return
        line, col, end_line, end_col = node_region(node)
        self._fn_stack[-1]["mutations"].append(
            Mutation(
                attr=attr,
                kind=kind,
                line=line,
                col=col,
                end_line=end_line,
                end_col=end_col,
                guards=tuple(self._with_locks),
            )
        )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._mutation_target(target, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._mutation_target(node.target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        attr = _self_attr(node.target)
        if attr is not None:
            self._record_mutation(attr, "augassign", node)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            attr = _self_attr(target)
            if attr is not None:
                self._record_mutation(attr, "delete", node)
        self.generic_visit(node)

    def _mutation_target(self, target: ast.expr, node: ast.AST) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._mutation_target(element, node)
            return
        attr = _self_attr(target)
        if attr is None:
            return
        kind = "subscript" if isinstance(target, ast.Subscript) else "assign"
        # Lock-attribute discovery: ``self.X = threading.Lock()``.
        if (
            kind == "assign"
            and self._class_stack
            and isinstance(node, (ast.Assign, ast.AnnAssign))
            and node.value is not None
            and _is_lock_factory(node.value)
        ):
            self._class_lock_attrs[self._class_stack[-1]].add(attr)
        self._record_mutation(attr, kind, node)

    # -- calls ---------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        self._record_call(node)
        self._record_thread_target(node)
        self._record_lock_facts(node)
        self.generic_visit(node)

    def _append_call(
        self, kind: str, name: str, node: ast.AST, receiver: str | None = None
    ) -> None:
        if not self._fn_stack:
            return
        line, col, _, _ = node_region(node)
        self._fn_stack[-1]["calls"].append(
            CallRef(kind=kind, name=name, line=line, col=col, receiver=receiver)
        )

    def _callable_ref(self, expr: ast.expr, node: ast.AST) -> CallRef | None:
        """A CallRef for a callable *expression* (not a call)."""
        line, col, _, _ = node_region(node)
        if isinstance(expr, ast.Name):
            return CallRef(kind="name", name=expr.id, line=line, col=col)
        if isinstance(expr, ast.Attribute):
            if isinstance(expr.value, ast.Name) and expr.value.id == "self":
                return CallRef(kind="self", name=expr.attr, line=line, col=col)
            receiver = (
                expr.value.id if isinstance(expr.value, ast.Name) else None
            )
            return CallRef(
                kind="attr", name=expr.attr, line=line, col=col,
                receiver=receiver,
            )
        return None

    def _record_call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            if (
                func.id == "getattr"
                and node.args
                and len(node.args) >= 2
                and isinstance(node.args[1], ast.Constant)
                and isinstance(node.args[1].value, str)
            ):
                receiver = (
                    node.args[0].id
                    if isinstance(node.args[0], ast.Name)
                    else None
                )
                self._append_call(
                    "attr", node.args[1].value, node, receiver=receiver
                )
                return
            self._append_call("name", func.id, node)
        elif isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name) and func.value.id == "self":
                self._append_call("self", func.attr, node)
                mutator_attr = None
            else:
                receiver = (
                    func.value.id
                    if isinstance(func.value, ast.Name)
                    else None
                )
                self._append_call("attr", func.attr, node, receiver=receiver)
                mutator_attr = (
                    _self_attr(func.value)
                    if func.attr in _MUTATOR_METHODS
                    else None
                )
            if mutator_attr is not None:
                self._record_mutation(mutator_attr, "call", node)

    def _record_thread_target(self, node: ast.Call) -> None:
        func = node.func
        callables: list[ast.expr] = []
        if isinstance(func, ast.Attribute) and func.attr in ("submit",):
            if node.args:
                callables.append(node.args[0])
        terminal = _terminal(func)
        if terminal == "Thread":
            for keyword in node.keywords:
                if keyword.arg == "target":
                    callables.append(keyword.value)
        for expr in callables:
            ref = self._callable_ref(expr, node)
            if ref is not None:
                self.thread_targets.append(ref)

    def _record_lock_facts(self, node: ast.Call) -> None:
        if not self._fn_stack:
            return
        frame = self._fn_stack[-1]
        line, col, end_line, end_col = node_region(node)
        func = node.func
        # Bare .acquire() on something lock-ish.
        if isinstance(func, ast.Attribute) and func.attr == "acquire":
            guard = _lock_expr_name(func.value, self._current_lock_attrs())
            if guard is not None:
                frame["lock_facts"].append(
                    LockFact("acquire", guard, line, col, end_line, end_col)
                )
        # Lock constructed inside a function body (per-call lock).
        if _is_lock_factory(node) and not frame["is_init"]:
            frame["lock_facts"].append(
                LockFact(
                    "lock_in_body",
                    _terminal(func) or "Lock",
                    line, col, end_line, end_col,
                )
            )
        # Sleeping while holding a lock.
        if (
            _terminal(func) == "sleep"
            and self._with_locks
        ):
            frame["lock_facts"].append(
                LockFact(
                    "sleep_under_lock",
                    self._with_locks[-1],
                    line, col, end_line, end_col,
                )
            )

    # -- assembly ------------------------------------------------------

    def summary(self, suppressed: dict[int, set[str]]) -> ModuleSummary:
        for name, methods in self._class_methods.items():
            line, bases, is_protocol = self._class_meta[name]
            self.classes[name] = ClassInfo(
                name=name,
                module=self.module,
                path=self.path,
                line=line,
                bases=bases,
                methods=tuple(methods),
                lock_attrs=tuple(sorted(self._class_lock_attrs[name])),
                is_protocol=is_protocol,
            )
        return ModuleSummary(
            path=self.path,
            module=self.module,
            functions=self.functions,
            classes=self.classes,
            thread_targets=tuple(self.thread_targets),
            suppressed={
                line: tuple(sorted(codes))
                for line, codes in suppressed.items()
            },
        )


def summarize_module(path: str | Path, source: str) -> ModuleSummary:
    """Extract one file's :class:`ModuleSummary` (raises SyntaxError)."""
    norm = Path(path).as_posix()
    tree = ast.parse(source, filename=norm)
    visitor = _ModuleVisitor(norm, module_name(norm))
    visitor.visit(tree)
    return visitor.summary(suppressed_lines(source))


class ProjectIndex:
    """Cross-file symbol table and call graph over module summaries."""

    def __init__(self, summaries: dict[str, ModuleSummary]) -> None:
        #: path → summary
        self.summaries = summaries
        #: qualname → FunctionInfo
        self.functions: dict[str, FunctionInfo] = {}
        #: simple name → [FunctionInfo] (methods and functions alike)
        self._by_name: dict[str, list[FunctionInfo]] = {}
        #: class name → [ClassInfo] (name collisions keep all)
        self._classes: dict[str, list[ClassInfo]] = {}
        #: class name → {method name → FunctionInfo}
        self._methods: dict[str, dict[str, FunctionInfo]] = {}
        for summary in summaries.values():
            for info in summary.functions.values():
                self.functions[info.qualname] = info
                self._by_name.setdefault(info.name, []).append(info)
                if info.cls is not None:
                    self._methods.setdefault(info.cls, {})[info.name] = info
            for cls in summary.classes.values():
                self._classes.setdefault(cls.name, []).append(cls)
        #: base class name → [subclass ClassInfo]
        self._subclasses: dict[str, list[ClassInfo]] = {}
        for infos in self._classes.values():
            for cls in infos:
                for base in cls.bases:
                    self._subclasses.setdefault(base, []).append(cls)

    # -- lookups -------------------------------------------------------

    def classes_named(self, name: str) -> list[ClassInfo]:
        return self._classes.get(name, [])

    def functions_named(self, name: str) -> list[FunctionInfo]:
        return self._by_name.get(name, [])

    def method(self, cls: str, name: str) -> FunctionInfo | None:
        return self._methods.get(cls, {}).get(name)

    def lock_owning_classes(self) -> list[ClassInfo]:
        """Classes that construct a ``threading.Lock``/``RLock``."""
        return [
            cls
            for infos in self._classes.values()
            for cls in infos
            if cls.lock_attrs
        ]

    def suppressed_at(self, path: str, line: int) -> frozenset[str]:
        summary = self.summaries.get(path)
        if summary is None:
            return frozenset()
        return frozenset(summary.suppressed.get(line, ()))

    def _conforming_classes(self, protocol: ClassInfo) -> list[ClassInfo]:
        """Concrete classes structurally matching ``protocol``."""
        wanted = {
            m for m in protocol.methods if not m.startswith("__")
        }
        if not wanted:
            return []
        out = []
        for infos in self._classes.values():
            for cls in infos:
                if cls.is_protocol or cls.name == protocol.name:
                    continue
                if wanted <= set(cls.methods):
                    out.append(cls)
        return out

    def _methods_in_hierarchy(self, cls: ClassInfo, name: str) -> list[FunctionInfo]:
        """``name`` resolved in ``cls``, its bases and its subclasses."""
        seen: dict[str, FunctionInfo] = {}
        stack = [cls]
        visited: set[str] = set()
        while stack:
            current = stack.pop()
            if current.name in visited:
                continue
            visited.add(current.name)
            found = self.method(current.name, name)
            if found is not None:
                seen[found.qualname] = found
            for base in current.bases:
                stack.extend(self.classes_named(base))
            stack.extend(self._subclasses.get(current.name, []))
        return list(seen.values())

    # -- resolution ----------------------------------------------------

    def resolve(
        self, ref: CallRef, caller: FunctionInfo
    ) -> list[FunctionInfo]:
        """Project functions a call reference may land on."""
        if ref.kind == "self" and caller.cls is not None:
            targets: dict[str, FunctionInfo] = {}
            for cls in self.classes_named(caller.cls):
                for info in self._methods_in_hierarchy(cls, ref.name):
                    targets[info.qualname] = info
            return list(targets.values())
        if ref.kind == "name":
            local = self.functions.get(f"{caller.module}.{ref.name}")
            if local is not None:
                return [local]
            return [
                info
                for info in self.functions_named(ref.name)
                if info.cls is None
            ]
        # attr calls: annotation-driven when possible.
        if ref.kind == "attr":
            if ref.receiver is not None:
                annotated = dict(caller.param_types).get(ref.receiver)
                if annotated is not None:
                    resolved = self._resolve_via_annotation(
                        annotated, ref.name
                    )
                    if resolved:
                        return resolved
            if ref.name in _GENERIC_METHODS:
                return []
            return list(self.functions_named(ref.name))
        return []

    def _resolve_via_annotation(
        self, class_name: str, method: str
    ) -> list[FunctionInfo]:
        targets: dict[str, FunctionInfo] = {}
        for cls in self.classes_named(class_name):
            if cls.is_protocol:
                for impl in self._conforming_classes(cls):
                    found = self.method(impl.name, method)
                    if found is not None:
                        targets[found.qualname] = found
                # The protocol's own (stub) method body is harmless.
            else:
                for info in self._methods_in_hierarchy(cls, method):
                    targets[info.qualname] = info
        return list(targets.values())

    # -- reachability --------------------------------------------------

    def reachable_from(
        self, roots: list[FunctionInfo]
    ) -> dict[str, str | None]:
        """BFS closure over call edges; qualname → parent qualname."""
        parents: dict[str, str | None] = {}
        queue: deque[FunctionInfo] = deque()
        for root in roots:
            if root.qualname not in parents:
                parents[root.qualname] = None
                queue.append(root)
        while queue:
            current = queue.popleft()
            for ref in current.calls:
                for target in self.resolve(ref, current):
                    if target.qualname in parents:
                        continue
                    parents[target.qualname] = current.qualname
                    queue.append(target)
        return parents

    def chain(
        self, parents: dict[str, str | None], qualname: str
    ) -> list[str]:
        """Root→``qualname`` call chain from a BFS parent map."""
        out = [qualname]
        seen = {qualname}
        current: str | None = qualname
        while current is not None:
            current = parents.get(current)
            if current is None or current in seen:
                break
            seen.add(current)
            out.append(current)
        out.reverse()
        return out

    def resolve_targets(self, ref: CallRef) -> list[FunctionInfo]:
        """Resolution for thread-target references (no caller context)."""
        if ref.kind in ("attr", "self"):
            if ref.kind == "attr" and ref.name in _GENERIC_METHODS:
                return []
            return list(self.functions_named(ref.name))
        return [
            info
            for info in self.functions_named(ref.name)
            if info.cls is None
        ]

    def thread_roots(self) -> list[FunctionInfo]:
        """Functions handed to thread pools or Thread targets."""
        roots: dict[str, FunctionInfo] = {}
        for summary in self.summaries.values():
            for ref in summary.thread_targets:
                for info in self.resolve_targets(ref):
                    roots[info.qualname] = info
        return list(roots.values())


def build_index(summaries: dict[str, ModuleSummary]) -> ProjectIndex:
    """Assemble the :class:`ProjectIndex` from per-file summaries."""
    return ProjectIndex(summaries)
