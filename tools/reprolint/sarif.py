"""SARIF 2.1.0 exporter.

Emits the subset of SARIF that GitHub code scanning consumes: one run,
one rule descriptor per distinct rule, one result per finding with a
physical location region.  Regions use reprolint's native convention —
1-based lines and columns, exclusive ``endColumn`` — which is exactly
SARIF's, so :attr:`Violation.region` maps through unchanged.
"""

from __future__ import annotations

from reprolint.core import Violation, all_rules

__all__ = ["to_sarif"]

_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
_VERSION = "2.1.0"


def to_sarif(
    violations: list[Violation], tool_version: str = "2.0"
) -> dict[str, object]:
    """Build the SARIF log dict for ``violations``."""
    descriptions = {
        rule.rule_id: (rule.name, rule.description) for rule in all_rules()
    }
    used_ids = sorted({v.rule_id for v in violations})
    rules = []
    for rule_id in used_ids:
        name, description = descriptions.get(
            rule_id, (rule_id.lower(), "unregistered rule")
        )
        rules.append(
            {
                "id": rule_id,
                "name": name,
                "shortDescription": {"text": description},
            }
        )

    results = []
    for violation in violations:
        line, column, end_line, end_col = violation.region
        region: dict[str, object] = {
            "startLine": line,
            "startColumn": column,
        }
        if end_line:
            region["endLine"] = end_line
        if end_col:
            region["endColumn"] = end_col
        results.append(
            {
                "ruleId": violation.rule_id,
                "level": "error",
                "message": {"text": violation.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": violation.path,
                                "uriBaseId": "SRCROOT",
                            },
                            "region": region,
                        }
                    }
                ],
            }
        )

    return {
        "$schema": _SCHEMA,
        "version": _VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "version": tool_version,
                        "rules": rules,
                    }
                },
                "originalUriBaseIds": {
                    "SRCROOT": {"uri": "file:///"}
                },
                "results": results,
            }
        ],
    }
